// Socket soak: the fault ladder proven outside the simulator. The
// event-driven engine in chaos.go exercises the paper's invariants over
// simulated time; this file drives the same five-auditor battery over a
// rekeyd.World — real goroutine-per-node members exchanging wire frames
// through internal/transport sockets, with faults injected by the
// transport-level FaultPlan instead of the virtual network.
//
// The schedule walks a fault ladder each interval — clean, loss, delay
// spikes, partition, kill/restore, crash — and every fault heals inside
// the recovery ladder's budget, so the soak's standard of proof is
// total convergence: a surviving member that ends an interval without
// the group key is a violation, whatever the fault phase was.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/obs"
	"tmesh/internal/overlay"
	"tmesh/internal/recovery"
	"tmesh/internal/rekeyd"
	"tmesh/internal/transport"
)

// socketPhases is the per-interval fault ladder, cycled in order. The
// first interval is always clean (index 0 hits "clean") so the soak
// starts from a converged baseline.
var socketPhases = []string{"clean", "loss", "delay", "partition", "kill", "crash"}

// Heal points, chosen so every fault lifts well inside the recovery
// ladder's budget (Timeout + Σ backoff + ResyncBudget·RetryMax): the
// soak asserts convergence, so a fault that outlived the ladder would
// be a configuration bug, not a finding.
const (
	socketHealAfter = 300 * time.Millisecond
	socketLossProb  = 0.10
	socketDelayProb = 0.30
	socketDelayMin  = 2 * time.Millisecond
	socketDelayMax  = 25 * time.Millisecond
	socketKillCount = 2
	socketPartFrac  = 4 // partition cuts 1/socketPartFrac of members
)

// SocketConfig parameterizes one socket soak session.
type SocketConfig struct {
	Transport string // "loopback" or "udp" (tcp works but is slow at full mesh)
	Listen    string // bind address for socket transports; empty = 127.0.0.1:0
	Seed      int64
	Params    ident.Params
	K         int
	Members   int // initial group size
	Intervals int
	Ladder    rekeyd.Config // zero-valued fields take rekeyd defaults
	Obs       *obs.Registry
}

// DefaultSocketConfig returns the configuration the soak-transport CI
// target runs: a small group, one full cycle of the fault ladder, and
// ladder timing generous enough that a clean interval converges by pure
// multicast even on a loaded race-detector run.
func DefaultSocketConfig(tr string) SocketConfig {
	return SocketConfig{
		Transport: tr,
		Seed:      1,
		Params:    ident.Params{Digits: 3, Base: 4},
		K:         2,
		Members:   16,
		Intervals: len(socketPhases),
		Ladder: rekeyd.Config{
			Timeout:      500 * time.Millisecond,
			RetryBase:    50 * time.Millisecond,
			RetryMax:     200 * time.Millisecond,
			RetryBudget:  3,
			ResyncBudget: 5,
		},
	}
}

// SocketIntervalStats is the audited record of one socket-soak interval.
type SocketIntervalStats struct {
	Index   int
	Phase   string
	Members int // group size after the interval's churn

	Joins, Leaves, Crashes, Kills int

	Expected                                  int
	KeyByMulticast, KeyByUnicast, KeyByResync int
	DeadInFlight                              int
	UnicastAttempts, SyncAttempts             int
	MaxBackoff                                time.Duration

	Violations []string
}

func (s *SocketIntervalStats) line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "interval %02d: phase=%-9s members=%d join=%d leave=%d crash=%d kill=%d",
		s.Index, s.Phase, s.Members, s.Joins, s.Leaves, s.Crashes, s.Kills)
	fmt.Fprintf(&b, " | key=%d/%d/%d dead=%d attempts=%d/%d backoff=%v",
		s.KeyByMulticast, s.KeyByUnicast, s.KeyByResync,
		s.DeadInFlight, s.UnicastAttempts, s.SyncAttempts, s.MaxBackoff)
	if len(s.Violations) == 0 {
		b.WriteString(" | OK")
	} else {
		fmt.Fprintf(&b, " | VIOLATIONS=%d", len(s.Violations))
	}
	return b.String()
}

// SocketReport is the outcome of one socket soak. Unlike the simulator
// report it is not byte-reproducible — rung attribution depends on real
// scheduler timing — so tests assert TotalViolations, not the exact
// rendering.
type SocketReport struct {
	Transport string
	Seed      int64
	Auditors  []string
	Intervals []SocketIntervalStats

	FinalViolations []string
}

// TotalViolations counts invariant failures across all intervals plus
// the final sweep.
func (r *SocketReport) TotalViolations() int {
	n := len(r.FinalViolations)
	for i := range r.Intervals {
		n += len(r.Intervals[i].Violations)
	}
	return n
}

// String renders the soak report.
func (r *SocketReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "socket soak transport=%s seed=%d intervals=%d auditors=%s\n",
		r.Transport, r.Seed, len(r.Intervals), strings.Join(r.Auditors, ","))
	for i := range r.Intervals {
		b.WriteString(r.Intervals[i].line())
		b.WriteByte('\n')
		for _, v := range r.Intervals[i].Violations {
			fmt.Fprintf(&b, "  violation: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "final: violations=%d\n", r.TotalViolations())
	for _, v := range r.FinalViolations {
		fmt.Fprintf(&b, "  final violation: %s\n", v)
	}
	return b.String()
}

// socketRun is the live state the socket auditors inspect.
type socketRun struct {
	cfg    SocketConfig
	w      *rekeyd.World
	mirror *clusterMirror
	rng    *rand.Rand

	// Interval-scoped: the churn the driver just applied and the
	// ladder result it produced.
	res       *rekeyd.Result
	joined    []ident.ID
	departed  []ident.ID // leaves + crash evictions
	faultFree bool

	lastEpoch map[string]uint64
}

// socketAuditor mirrors the simulator's Auditor shape for the world.
type socketAuditor struct {
	name  string
	check func(s *socketRun, idx int, stats *SocketIntervalStats) error
}

func socketAuditors() []socketAuditor {
	return []socketAuditor{
		{name: "k-consistency", check: socketAuditKConsistency},
		{name: "delivery", check: socketAuditDelivery},
		{name: "coverage", check: socketAuditCoverage},
		{name: "cluster", check: socketAuditCluster},
		{name: "ladder", check: socketAuditLadder},
	}
}

// socketAuditKConsistency runs the full Definition 3 sweep every
// interval; the socket group is small enough that scoping (the
// simulator's optimization) buys nothing.
func socketAuditKConsistency(s *socketRun, idx int, stats *SocketIntervalStats) error {
	var err error
	s.w.Shared().Read(func(dir *overlay.Directory) { err = dir.CheckConsistency() })
	if err != nil {
		return fmt.Errorf("full sweep: %w", err)
	}
	return nil
}

// socketAuditDelivery checks the Theorem 1 probe over real sockets: in
// a fault-free interval the multicast tree delivers exactly one copy of
// the rekey message to every member — the per-hop bitmap split never
// duplicates and never starves. Faulty intervals are skipped: the
// ladder's recovery unicasts are legitimate extra copies, so copy
// counts prove nothing there.
func socketAuditDelivery(s *socketRun, idx int, stats *SocketIntervalStats) error {
	if !s.faultFree {
		return nil
	}
	var vs []string
	for _, m := range s.w.Members() {
		if n := m.CopiesOf(s.res.Interval); n != 1 {
			vs = append(vs, fmt.Sprintf("member %v received %d copies in a fault-free interval (Theorem 1: exactly one)", m.ID(), n))
		}
	}
	if rungs := s.res.Rungs(); vs == nil && (rungs[recovery.ByUnicast] > 0 || rungs[recovery.ByResync] > 0) {
		vs = append(vs, fmt.Sprintf("fault-free interval needed the ladder: %d unicast, %d resync",
			rungs[recovery.ByUnicast], rungs[recovery.ByResync]))
	}
	return joinViolations(vs)
}

// socketAuditCoverage is Lemma 3 / Theorem 2 with real keyrings: every
// member still in the group holds the server's group key byte for byte
// and sits at the tree's interval. Because every fault in the schedule
// heals inside the ladder budget, there is no surviving-member carve-out.
func socketAuditCoverage(s *socketRun, idx int, stats *SocketIntervalStats) error {
	want, ok := s.w.Tree().GroupKey()
	if !ok {
		return fmt.Errorf("key tree has no group key")
	}
	var vs []string
	for _, m := range s.w.Members() {
		got, has := m.GroupKey()
		if !has || !got.Equal(want) {
			vs = append(vs, fmt.Sprintf("member %v does not hold the interval's group key", m.ID()))
			continue
		}
		if m.Applied() != s.w.Tree().Interval() {
			vs = append(vs, fmt.Sprintf("member %v applied interval %d, tree at %d", m.ID(), m.Applied(), s.w.Tree().Interval()))
		}
	}
	return joinViolations(vs)
}

// socketAuditCluster replays the Appendix B bottom-cluster invariants
// against a mirror fed by the driver's churn: one live leader per
// cluster, leader inside its own cluster, no member senior to it,
// epochs never regress (except a cluster that emptied and re-formed),
// and mirror membership agrees with the directory both ways.
func socketAuditCluster(s *socketRun, idx int, stats *SocketIntervalStats) error {
	if _, err := s.mirror.process(); err != nil {
		return fmt.Errorf("mirror process: %w", err)
	}
	var vs []string
	seen := make(map[string]bool)
	for _, p := range s.mirror.prefixes() {
		pk := p.Key()
		seen[pk] = true
		leader, ok := s.mirror.leader(p)
		if !ok {
			vs = append(vs, fmt.Sprintf("cluster %s has no leader", pk))
			continue
		}
		if !leader.ID.HasPrefix(p) {
			vs = append(vs, fmt.Sprintf("cluster %s led by outsider %v", pk, leader.ID))
		}
		if _, present := s.w.Member(leader.ID); !present || s.w.IsKilled(leader.ID) {
			vs = append(vs, fmt.Sprintf("cluster %s leader %v is dead or departed", pk, leader.ID))
		}
		for _, m := range s.mirror.membersOf(p) {
			if m.JoinTime < leader.JoinTime {
				vs = append(vs, fmt.Sprintf("cluster %s: member %v joined before leader %v", pk, m.ID, leader.ID))
			}
			if _, present := s.w.Member(m.ID); !present {
				vs = append(vs, fmt.Sprintf("cluster %s member %v is not in the group", pk, m.ID))
			}
		}
		if ep, ok := s.mirror.epoch(p); ok {
			if last, prev := s.lastEpoch[pk]; prev && ep < last && ep != 0 {
				vs = append(vs, fmt.Sprintf("cluster %s epoch went backwards: %d -> %d", pk, last, ep))
			}
			s.lastEpoch[pk] = ep
		}
	}
	for k := range s.lastEpoch {
		if !seen[k] {
			delete(s.lastEpoch, k)
		}
	}
	for _, m := range s.w.Members() {
		if !s.mirror.has(m.ID().Key()) {
			vs = append(vs, fmt.Sprintf("member %v missing from the cluster mirror", m.ID()))
		}
	}
	return joinViolations(vs)
}

// socketAuditLadder checks the interval's recovery accounting: the
// acked set plus the dead-in-flight set is exactly the expected set,
// reported backoff never exceeds the cap, and — because every injected
// fault healed inside the budget — nobody was left dead in flight.
func socketAuditLadder(s *socketRun, idx int, stats *SocketIntervalStats) error {
	res := s.res
	rungs := res.Rungs()
	stats.Expected = res.Expected
	stats.KeyByMulticast = rungs[recovery.ByMulticast]
	stats.KeyByUnicast = rungs[recovery.ByUnicast]
	stats.KeyByResync = rungs[recovery.ByResync]
	stats.DeadInFlight = len(res.DeadInFlight)
	stats.UnicastAttempts = res.UnicastAttempts
	stats.SyncAttempts = res.SyncAttempts
	stats.MaxBackoff = res.MaxBackoff

	var vs []string
	if got := len(res.RungOf) + len(res.DeadInFlight); got != res.Expected {
		vs = append(vs, fmt.Sprintf("ladder accounted for %d of %d expected members", got, res.Expected))
	}
	for _, id := range res.DeadInFlight {
		if !s.w.IsKilled(id) {
			vs = append(vs, fmt.Sprintf("reachable member %v declared dead in flight", id))
		}
	}
	if len(res.DeadInFlight) > 0 {
		vs = append(vs, fmt.Sprintf("%d members dead in flight though every fault healed inside the ladder budget", len(res.DeadInFlight)))
	}
	if max := s.ladderMax(); res.MaxBackoff > max {
		vs = append(vs, fmt.Sprintf("reported backoff %v exceeds RetryMax %v", res.MaxBackoff, max))
	}
	return joinViolations(vs)
}

func (s *socketRun) ladderMax() time.Duration {
	if s.cfg.Ladder.RetryMax > 0 {
		return s.cfg.Ladder.RetryMax
	}
	return 4 * s.cfg.Ladder.RetryBase
}

// RunSocketSoak drives one soak session over real sockets and returns
// the audited report. A non-nil error means the driver itself broke
// (world construction, churn bookkeeping); invariant failures are
// reported as violations, never as errors, so one bad interval cannot
// hide later ones.
func RunSocketSoak(cfg SocketConfig) (*SocketReport, error) {
	if cfg.Transport == "" {
		cfg.Transport = "loopback"
	}
	if cfg.Intervals <= 0 {
		cfg.Intervals = len(socketPhases)
	}
	w, err := rekeyd.NewWorld(rekeyd.WorldConfig{
		Params:         cfg.Params,
		K:              cfg.K,
		Seed:           cfg.Seed,
		InitialMembers: cfg.Members,
		Transport:      cfg.Transport,
		Listen:         cfg.Listen,
		Ladder:         cfg.Ladder,
		Obs:            cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	mirror, err := newClusterMirror(cfg.Params, seedBytes(cfg.Seed))
	if err != nil {
		return nil, err
	}
	run := &socketRun{
		cfg:       cfg,
		w:         w,
		mirror:    mirror,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x736f636b)),
		lastEpoch: make(map[string]uint64),
	}
	// Seed the mirror with the world's initial membership.
	if err := run.mirrorJoinCurrent(); err != nil {
		return nil, err
	}

	auditors := socketAuditors()
	rep := &SocketReport{Transport: cfg.Transport, Seed: cfg.Seed}
	for _, a := range auditors {
		rep.Auditors = append(rep.Auditors, a.name)
	}

	for idx := 0; idx < cfg.Intervals; idx++ {
		phase := socketPhases[idx%len(socketPhases)]
		stats := SocketIntervalStats{Index: idx, Phase: phase}
		if err := run.interval(phase, &stats); err != nil {
			return nil, err
		}
		for _, a := range auditors {
			if aerr := a.check(run, idx, &stats); aerr != nil {
				stats.Violations = append(stats.Violations, fmt.Sprintf("%s: %v", a.name, aerr))
			}
		}
		stats.Members = w.Size()
		rep.Intervals = append(rep.Intervals, stats)
	}

	// Final sweep: the overlay must be k-consistent and every member
	// must hold the last group key once the session quiesces.
	var sweep error
	w.Shared().Read(func(dir *overlay.Directory) { sweep = dir.CheckConsistency() })
	if sweep != nil {
		rep.FinalViolations = append(rep.FinalViolations, fmt.Sprintf("k-consistency: %v", sweep))
	}
	if want, ok := w.Tree().GroupKey(); ok {
		for _, m := range w.Members() {
			if got, has := m.GroupKey(); !has || !got.Equal(want) {
				rep.FinalViolations = append(rep.FinalViolations, fmt.Sprintf("coverage: member %v ends the soak without the group key", m.ID()))
			}
		}
	}
	return rep, nil
}

// interval applies one phase's churn and faults, runs the rekey, and
// waits for every fault to heal.
func (run *socketRun) interval(phase string, stats *SocketIntervalStats) error {
	w, plan := run.w, run.w.FaultPlan()
	run.joined, run.departed = nil, nil
	run.faultFree = phase == "clean"

	// Churn: one join per interval; from the second interval on, one
	// leave; the crash phase replaces the leave with a hard crash.
	if id, err := w.Join(); err == nil {
		run.joined = append(run.joined, id)
		stats.Joins++
	} else {
		return fmt.Errorf("chaos: socket join: %w", err)
	}
	members := w.Members()
	victim := func() ident.ID { return members[run.rng.Intn(len(members))].ID() }
	switch phase {
	case "crash":
		v := victim()
		if err := w.Crash(v); err != nil {
			return fmt.Errorf("chaos: socket crash: %w", err)
		}
		run.departed = append(run.departed, v)
		stats.Crashes++
	default:
		if stats.Index > 0 {
			v := victim()
			if err := w.Leave(v); err != nil {
				return fmt.Errorf("chaos: socket leave: %w", err)
			}
			run.departed = append(run.departed, v)
			stats.Leaves++
		}
	}
	departed := make(map[string]bool, len(run.departed))
	for _, id := range run.departed {
		departed[id.Key()] = true
	}

	// Faults, healed mid-ladder by the timer goroutine.
	var heal sync.WaitGroup
	healAt := func(f func()) {
		heal.Add(1)
		go func() {
			defer heal.Done()
			time.Sleep(socketHealAfter)
			f()
		}()
	}
	switch phase {
	case "loss":
		plan.SetLoss(socketLossProb)
	case "delay":
		plan.SetDelay(socketDelayProb, socketDelayMin, socketDelayMax)
	case "partition":
		var side []transport.PeerID
		for i, m := range members {
			if i%socketPartFrac == 0 && !departed[m.ID().Key()] {
				side = append(side, rekeyd.PeerOf(m.ID()))
			}
		}
		plan.Partition(side)
		healAt(plan.HealPartition)
	case "kill":
		killed := 0
		for _, i := range run.rng.Perm(len(members)) {
			if killed == socketKillCount {
				break
			}
			id := members[i].ID()
			if departed[id.Key()] {
				continue
			}
			w.Kill(id)
			killed++
			stats.Kills++
			healAt(func() { w.Restore(id) })
		}
	}

	res, err := w.Rekey()
	if err != nil {
		return fmt.Errorf("chaos: socket rekey: %w", err)
	}
	run.res = res
	heal.Wait()
	plan.SetLoss(0)
	plan.SetDelay(0, 0, 0)

	// Mirror the interval's realized churn.
	for _, id := range run.departed {
		if err := run.mirror.leave(id); err != nil {
			return fmt.Errorf("chaos: socket mirror leave: %w", err)
		}
	}
	if err := run.mirrorJoinCurrent(); err != nil {
		return err
	}
	return nil
}

// mirrorJoinCurrent feeds the mirror every directory member it does not
// know yet, with the directory's own records (IDs and join times), in
// deterministic order.
func (run *socketRun) mirrorJoinCurrent() error {
	var recs []overlay.Record
	run.w.Shared().Read(func(dir *overlay.Directory) {
		for _, id := range dir.IDs() {
			if run.mirror.has(id.Key()) {
				continue
			}
			if rec, ok := dir.Record(id); ok {
				recs = append(recs, rec)
			}
		}
	})
	// Feed in join order: the mirror elects the most senior member per
	// cluster, so insertion order must reproduce the directory's
	// JoinTime seniority (IDs only break ties).
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].JoinTime != recs[j].JoinTime {
			return recs[i].JoinTime < recs[j].JoinTime
		}
		return recs[i].ID.Compare(recs[j].ID) < 0
	})
	for _, rec := range recs {
		if err := run.mirror.join(rec); err != nil {
			return fmt.Errorf("chaos: socket mirror join %v: %w", rec.ID, err)
		}
	}
	return nil
}
