package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tmesh/internal/recovery"
)

// An Auditor checks one paper invariant against the engine's live state
// at an interval boundary. Check returns nil when the invariant holds;
// a non-nil error becomes a recorded violation (it never aborts the
// soak, so one bad interval cannot hide later ones). Auditors run in
// registry order and may fill the stats fields they own.
type Auditor struct {
	Name  string
	Check func(e *Engine, idx int, stats *IntervalStats) error
}

// defaultAuditors returns the registry in canonical order; the order is
// part of the report format.
func defaultAuditors() []Auditor {
	return []Auditor{
		{Name: "k-consistency", Check: auditKConsistency},
		{Name: "delivery", Check: auditDelivery},
		{Name: "coverage", Check: auditCoverage},
		{Name: "cluster", Check: auditCluster},
		{Name: "ladder", Check: auditLadder},
	}
}

func joinViolations(vs []string) error {
	if len(vs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(vs, "; "))
}

// auditKConsistency checks Definition 3 around every ID that churned
// since the last audit (join, leave, or crash), using the scoped sweep
// that covers exactly the entries such a change can affect, plus a
// periodic full sweep as a safety net for the scoping itself.
func auditKConsistency(e *Engine, idx int, stats *IntervalStats) error {
	var vs []string
	keys := make([]string, 0, len(e.churnSinceAudit))
	for k := range e.churnSinceAudit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		id := e.churnSinceAudit[k]
		if err := e.dir.CheckConsistencyUnder(id.Prefix(e.cfg.Params.Digits)); err != nil {
			vs = append(vs, fmt.Sprintf("churn at %v: %v", id, err))
		}
	}
	if e.cfg.FullSweepEvery > 0 && (idx+1)%e.cfg.FullSweepEvery == 0 {
		if err := e.dir.CheckConsistency(); err != nil {
			vs = append(vs, fmt.Sprintf("full sweep: %v", err))
		}
	}
	return joinViolations(vs)
}

// auditDelivery checks the Theorem 1 probe: no member ever receives a
// second copy of the data multicast, and in a fault-free interval (no
// partition, no configured hop loss) every member alive at send time
// receives exactly one.
func auditDelivery(e *Engine, idx int, stats *IntervalStats) error {
	if e.curData == nil {
		return fmt.Errorf("no data probe ran this interval")
	}
	faultFree := stats.PartitionDomain < 0 && e.cfg.HopLoss == 0
	var vs []string
	for _, m := range e.dataMembers {
		n := 0
		if st := e.curData.Users[m.key]; st != nil {
			n = st.Received
		}
		if n > 1 {
			vs = append(vs, fmt.Sprintf("user %s received %d copies (Theorem 1: at most one)", m.key, n))
		}
		if n >= 1 {
			stats.DataDelivered++
			continue
		}
		stats.DataLost++
		if faultFree && e.alive(m.id) {
			vs = append(vs, fmt.Sprintf("user %s missed the data multicast in a fault-free interval", m.key))
		}
	}
	return joinViolations(vs)
}

// auditCoverage checks Lemma 3 / Theorem 2 end to end: every member
// that was alive and in the key tree when the rekey message went out,
// and is still a live member at the audit, got its slice of the new
// keys by some rung of the ladder. It also books the interval's rung
// and retry counters into the stats.
func auditCoverage(e *Engine, idx int, stats *IntervalStats) error {
	lr := e.curLadder
	if lr == nil {
		return nil // no churn reached the tree; the old keys stand
	}
	stats.UnicastAttempts = lr.UnicastAttempts
	stats.Retries = lr.Retries
	stats.MaxBackoff = lr.MaxBackoff
	msg := lr.Message
	var vs []string
	for _, m := range e.rekeyLive {
		if !e.alive(m.id) {
			continue // crashed after the send: not a surviving member
		}
		if _, present := e.dir.Record(m.id); !present {
			continue
		}
		rung, ok := lr.RungOf[m.key]
		if !ok {
			if len(recovery.NeededBy(msg, m.id)) > 0 {
				vs = append(vs, fmt.Sprintf("surviving member %s never got its key slice", m.key))
			}
			continue
		}
		switch rung {
		case recovery.ByMulticast:
			stats.KeyByMulticast++
		case recovery.ByUnicast:
			stats.KeyByUnicast++
		case recovery.ByResync:
			stats.KeyByResync++
		}
	}
	return joinViolations(vs)
}

// auditCluster checks the Appendix B bottom-cluster invariants: every
// cluster has exactly one leader, the leader is a live member of its
// own cluster, no member joined strictly before it (equal join times
// keep the incumbent — the ID tie-break applies only at transfer),
// leadership epochs never go backwards, and the mirror's membership
// agrees with the directory in both directions.
func auditCluster(e *Engine, idx int, stats *IntervalStats) error {
	var vs []string
	intervalStart := time.Duration(idx) * e.cfg.IntervalLength
	seen := make(map[string]bool)
	for _, p := range e.mirror.prefixes() {
		pk := p.Key()
		seen[pk] = true
		leader, ok := e.mirror.leader(p)
		if !ok {
			vs = append(vs, fmt.Sprintf("cluster %s has no leader", pk))
			continue
		}
		if !leader.ID.HasPrefix(p) {
			vs = append(vs, fmt.Sprintf("cluster %s led by outsider %v", pk, leader.ID))
		}
		if _, present := e.dir.Record(leader.ID); !present || !e.mon.Alive(leader.ID) {
			vs = append(vs, fmt.Sprintf("cluster %s leader %v is dead or departed", pk, leader.ID))
		}
		for _, m := range e.mirror.membersOf(p) {
			if m.JoinTime < leader.JoinTime {
				vs = append(vs, fmt.Sprintf("cluster %s: member %v joined before leader %v", pk, m.ID, leader.ID))
			}
			if _, present := e.dir.Record(m.ID); !present {
				vs = append(vs, fmt.Sprintf("cluster %s member %v is not in the directory", pk, m.ID))
			}
		}
		if ep, ok := e.mirror.epoch(p); ok {
			if last, prev := e.lastEpoch[pk]; prev && ep < last {
				// A cluster that emptied and re-formed since the last audit
				// legitimately restarts at epoch 0 under a brand-new leader.
				if !(ep == 0 && leader.JoinTime >= intervalStart) {
					vs = append(vs, fmt.Sprintf("cluster %s epoch went backwards: %d -> %d", pk, last, ep))
				}
			}
			e.lastEpoch[pk] = ep
		}
	}
	for k := range e.lastEpoch {
		if !seen[k] {
			delete(e.lastEpoch, k)
		}
	}
	for _, id := range e.dir.IDs() {
		if e.mon.Alive(id) && !e.mirror.has(id.Key()) {
			vs = append(vs, fmt.Sprintf("live member %v missing from the cluster mirror", id))
		}
	}
	return joinViolations(vs)
}

// auditLadder checks that no recovery chain was left dangling: every
// user that entered rung 2 either completed some rung or crashed, and
// every user booked as resynced really carries the resync rung.
func auditLadder(e *Engine, idx int, stats *IntervalStats) error {
	lr := e.curLadder
	if lr == nil {
		return nil
	}
	lr.Finish()
	var vs []string
	for _, id := range lr.Recovered {
		if !e.mon.Alive(id) {
			continue
		}
		if _, present := e.dir.Record(id); !present {
			continue
		}
		if _, ok := lr.RungOf[id.Key()]; !ok {
			vs = append(vs, fmt.Sprintf("user %v entered recovery but no rung delivered its key", id))
		}
	}
	for _, id := range lr.Resynced {
		if lr.RungOf[id.Key()] != recovery.ByResync {
			vs = append(vs, fmt.Sprintf("user %v booked as resynced without the resync rung", id))
		}
	}
	return joinViolations(vs)
}
