package chaos

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tmesh/internal/obs"
)

// smallConfig is a fast soak for the telemetry tests: every fault class
// stays enabled, loss forces the ladder past rung 1 so the recovery
// counters are non-trivial.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Intervals = 6
	cfg.InitialMembers = 80
	cfg.HopLoss = 0.15
	return cfg
}

// TestSoakTelemetryDoesNotPerturbReport: attaching a registry and a sink
// must not change a single byte of the soak report — telemetry reads the
// simulation, never the other way round.
func TestSoakTelemetryDoesNotPerturbReport(t *testing.T) {
	plain := runSoak(t, smallConfig(21))

	cfg := smallConfig(21)
	cfg.Obs = obs.New()
	var buf bytes.Buffer
	cfg.Sink = obs.NewSink(&buf)
	instrumented := runSoak(t, cfg)

	if plain.String() != instrumented.String() {
		t.Errorf("telemetry perturbed the report:\n--- off ---\n%s\n--- on ---\n%s",
			plain.String(), instrumented.String())
	}

	// Guard against a vacuously green test: the instruments must have
	// actually fired.
	snap := cfg.Obs.Snapshot()
	counters := make(map[string]int64, len(snap.Counters))
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"chaos_audit_pass_coverage",
		"recovery_rung_multicast",
		"recovery_unicast_attempts",
		"keytree_regen_subtrees",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s never fired; instrumentation is not wired", name)
		}
	}
	hists := make(map[string]int64, len(snap.Histograms))
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{"chaos_rekey_ns", "chaos_deliver_ns", "chaos_audit_ns", "chaos_inject_ns"} {
		if hists[name] == 0 {
			t.Errorf("span histogram %s has no samples", name)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("sink received no interval records")
	}
}

// TestSoakSinkStreamDeterministic: two same-seed soaks must emit
// byte-identical JSONL streams, each line valid JSON with strictly
// increasing interval numbers.
func TestSoakSinkStreamDeterministic(t *testing.T) {
	emit := func() string {
		cfg := smallConfig(22)
		cfg.Obs = obs.New()
		var buf bytes.Buffer
		cfg.Sink = obs.NewSink(&buf)
		runSoak(t, cfg)
		if err := cfg.Sink.Err(); err != nil {
			t.Fatalf("sink error: %v", err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Errorf("same-seed sink streams diverged:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}

	// The stream interleaves one "interval" record and one "slo" record
	// per boundary; both sequences must be complete and strictly ordered.
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	want := smallConfig(22).Intervals
	intervals, slos := 0, 0
	lastInterval, lastBoundary := 0, 0
	for i, line := range lines {
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &kind); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		switch kind.Kind {
		case "interval":
			var ev intervalEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("line %d: %v", i+1, err)
			}
			if ev.Interval <= lastInterval {
				t.Errorf("line %d: interval %d not strictly after %d", i+1, ev.Interval, lastInterval)
			}
			lastInterval = ev.Interval
			intervals++
		case "slo":
			var ev struct {
				Group    string `json:"group"`
				Boundary int    `json:"boundary"`
				Verdict  string `json:"verdict"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("line %d: %v", i+1, err)
			}
			if ev.Group != "chaos" {
				t.Errorf("line %d: slo group = %q, want chaos", i+1, ev.Group)
			}
			if ev.Boundary <= lastBoundary {
				t.Errorf("line %d: slo boundary %d not strictly after %d", i+1, ev.Boundary, lastBoundary)
			}
			lastBoundary = ev.Boundary
			switch ev.Verdict {
			case "ok", "warn", "page":
			default:
				t.Errorf("line %d: slo verdict = %q", i+1, ev.Verdict)
			}
			slos++
		default:
			t.Errorf("line %d: unexpected kind %q", i+1, kind.Kind)
		}
	}
	if intervals != want {
		t.Errorf("got %d interval records, want %d", intervals, want)
	}
	if slos != want {
		t.Errorf("got %d slo records, want %d", slos, want)
	}
}
