package chaos

import (
	"bytes"
	"testing"

	"tmesh/internal/obs"
	"tmesh/internal/obs/trace"
)

// TestSoakTracingDoesNotPerturbReport: the flight recorder must read the
// simulation without steering it — same seed, same report, byte for
// byte, tracing on or off — and every recorded trace must pass the
// offline theorem audit even under 15% hop loss.
func TestSoakTracingDoesNotPerturbReport(t *testing.T) {
	plain := runSoak(t, smallConfig(31))

	cfg := smallConfig(31)
	var buf bytes.Buffer
	cfg.TraceSink = obs.NewSink(&buf)
	traced := runSoak(t, cfg)
	if err := cfg.TraceSink.Err(); err != nil {
		t.Fatalf("trace sink error: %v", err)
	}

	if plain.String() != traced.String() {
		t.Errorf("tracing perturbed the report:\n--- off ---\n%s\n--- on ---\n%s",
			plain.String(), traced.String())
	}

	records, err := trace.ParseRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	audits, err := trace.AuditRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	// Every interval opens a data and a rekey trace.
	if want := 2 * cfg.Intervals; len(audits) != want {
		t.Fatalf("recorded %d traces, want %d", len(audits), want)
	}
	var rekeyHops, drops, recoveries int
	for _, a := range audits {
		if !a.OK() {
			for _, c := range a.Checks {
				for _, v := range c.Violations {
					t.Errorf("%s %s: %s", a.ID, c.Name, v)
				}
			}
		}
		if a.Label == "rekey" {
			rekeyHops += a.Hops
			recoveries += a.Unicasts + a.Resyncs
		}
		drops += a.DroppedHops
	}
	// Guard against a vacuously green audit: with 15% hop loss the
	// recorder must have seen real hops, real drops, and the ladder
	// repairing the holes.
	if rekeyHops == 0 {
		t.Error("no rekey hops recorded")
	}
	if drops == 0 {
		t.Error("no dropped hops recorded despite 15% hop loss")
	}
	if recoveries == 0 {
		t.Error("no ladder recoveries recorded despite 15% hop loss")
	}
}

// TestSoakTraceStreamDeterministic: same seed, same trace stream, byte
// for byte — trace IDs, spans, and sim-times are all seed-derived.
func TestSoakTraceStreamDeterministic(t *testing.T) {
	emit := func(sample int) string {
		cfg := smallConfig(32)
		cfg.TraceSample = sample
		var buf bytes.Buffer
		cfg.TraceSink = obs.NewSink(&buf)
		runSoak(t, cfg)
		if err := cfg.TraceSink.Err(); err != nil {
			t.Fatalf("trace sink error: %v", err)
		}
		return buf.String()
	}
	a, b := emit(1), emit(1)
	if a != b {
		t.Error("same-seed trace streams diverged")
	}

	countTraces := func(stream string) int {
		records, err := trace.ParseRecords(bytes.NewReader([]byte(stream)))
		if err != nil {
			t.Fatal(err)
		}
		audits, err := trace.AuditRecords(records)
		if err != nil {
			t.Fatal(err)
		}
		return len(audits)
	}
	full, sampled := countTraces(a), countTraces(emit(2))
	// Sampling every 2nd interval records intervals 1, 3, 5 of 6.
	if want := full / 2; sampled != want {
		t.Errorf("TraceSample=2 recorded %d traces, want %d (of %d)", sampled, want, full)
	}
}
