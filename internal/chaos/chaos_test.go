package chaos

import (
	"testing"
	"time"
)

func runSoak(t *testing.T, cfg Config) *Report {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSoakDefaultConfigGreen is the acceptance soak: >= 20 intervals,
// >= 10k events, every fault class enabled, all auditors green.
func TestSoakDefaultConfigGreen(t *testing.T) {
	rep := runSoak(t, DefaultConfig(1))
	if n := rep.TotalViolations(); n != 0 {
		t.Fatalf("%d invariant violations:\n%s", n, rep.String())
	}
	if len(rep.Intervals) < 20 {
		t.Errorf("ran %d intervals, want >= 20", len(rep.Intervals))
	}
	if rep.TotalEvents < 10000 {
		t.Errorf("processed %d events, want >= 10000", rep.TotalEvents)
	}
	var joins, leaves, crashes, kills, bursts, partitions, spikes int
	for i := range rep.Intervals {
		s := &rep.Intervals[i]
		joins += s.Joins
		leaves += s.Leaves
		crashes += s.Crashes
		kills += s.LeaderKills
		if s.Burst {
			bursts++
		}
		if s.PartitionDomain >= 0 {
			partitions++
		}
		if s.Spike {
			spikes++
		}
	}
	if joins == 0 || leaves == 0 || crashes == 0 {
		t.Errorf("churn did not exercise all classes: joins=%d leaves=%d crashes=%d", joins, leaves, crashes)
	}
	if kills == 0 {
		t.Errorf("no cluster-leader kills in %d crashes", crashes)
	}
	if bursts == 0 || partitions == 0 || spikes == 0 {
		t.Errorf("fault classes unexercised: bursts=%d partitions=%d spikes=%d", bursts, partitions, spikes)
	}
}

// TestSoakByteIdenticalReports: determinism is a hard invariant — two
// engines built from the same configuration must replay the session
// byte-identically, report included.
func TestSoakByteIdenticalReports(t *testing.T) {
	a := runSoak(t, DefaultConfig(7))
	b := runSoak(t, DefaultConfig(7))
	if a.String() != b.String() {
		t.Errorf("same-seed soaks diverged:\n--- run A ---\n%s\n--- run B ---\n%s", a.String(), b.String())
	}
}

// TestSoakSeedsDisagree guards the determinism test against a trivially
// constant report: different seeds must produce different sessions.
func TestSoakSeedsDisagree(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Intervals = 5
	other := cfg
	other.Seed = 12
	if runSoak(t, cfg).String() == runSoak(t, other).String() {
		t.Error("seeds 11 and 12 produced identical reports; the RNG plumbing is broken")
	}
}

// TestSoakLossyLadderEngages runs the acceptance loss scenario: 20%
// per-hop loss must push keys down the ladder — retries with backoff
// and at least one full resync — while every surviving member still
// ends each interval holding the current group key (zero coverage
// violations).
func TestSoakLossyLadderEngages(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.HopLoss = 0.2
	rep := runSoak(t, cfg)
	if n := rep.TotalViolations(); n != 0 {
		t.Fatalf("%d invariant violations under loss:\n%s", n, rep.String())
	}
	var unicast, resync, retries int
	var maxBackoff time.Duration
	for i := range rep.Intervals {
		s := &rep.Intervals[i]
		unicast += s.KeyByUnicast
		resync += s.KeyByResync
		retries += s.Retries
		if s.MaxBackoff > maxBackoff {
			maxBackoff = s.MaxBackoff
		}
	}
	if unicast == 0 {
		t.Error("no key delivered by unicast recovery under 20% hop loss")
	}
	if retries == 0 || maxBackoff == 0 {
		t.Errorf("backoff never engaged: retries=%d maxBackoff=%v", retries, maxBackoff)
	}
	if resync == 0 {
		t.Error("no full resync under 20% hop loss; the third rung never engaged")
	}
}

// TestSoakConfigValidation rejects configurations whose windows cannot
// hold their own failure machinery.
func TestSoakConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Intervals = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.HopLoss = 1 },
		func(c *Config) { c.IntervalLength = time.Second }, // detection cannot fit
		func(c *Config) { c.RetryMax = 20 * time.Second },  // ladder cannot fit
		func(c *Config) { c.SpikeFactor = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config should have been rejected", i)
		}
	}
}
