package chaos

import (
	"tmesh/internal/cluster"
	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/overlay"
)

// clusterMirror runs a cluster.Manager alongside the soak's real key
// tree, fed the same membership stream, so the Appendix B invariants
// (leader uniqueness, earliest-joined leadership, epoch monotonicity)
// can be audited each interval without routing the actual rekey traffic
// through the cluster heuristic. The membership set is tracked here
// because the Manager has no O(1) membership probe.
type clusterMirror struct {
	m       *cluster.Manager
	members map[string]overlay.Record
}

func newClusterMirror(params ident.Params, seed []byte) (*clusterMirror, error) {
	m, err := cluster.New(params, seed, keytree.Opts{})
	if err != nil {
		return nil, err
	}
	return &clusterMirror{m: m, members: make(map[string]overlay.Record)}, nil
}

func (c *clusterMirror) join(rec overlay.Record) error {
	if err := c.m.Join(rec); err != nil {
		return err
	}
	c.members[rec.ID.Key()] = rec
	return nil
}

func (c *clusterMirror) leave(id ident.ID) error {
	if err := c.m.Leave(id); err != nil {
		return err
	}
	delete(c.members, id.Key())
	return nil
}

func (c *clusterMirror) process() (*cluster.Result, error) { return c.m.Process() }

func (c *clusterMirror) has(key string) bool {
	_, ok := c.members[key]
	return ok
}

func (c *clusterMirror) prefixes() []ident.Prefix { return c.m.Prefixes() }

func (c *clusterMirror) leader(p ident.Prefix) (overlay.Record, bool) { return c.m.Leader(p) }

func (c *clusterMirror) membersOf(p ident.Prefix) []overlay.Record { return c.m.Members(p) }

func (c *clusterMirror) epoch(p ident.Prefix) (uint64, bool) { return c.m.Epoch(p) }
