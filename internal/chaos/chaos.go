// Package chaos is a deterministic fault-injection soak engine for the
// whole T-mesh stack. It drives an N-interval group session over the
// discrete event engine — joins, leaves, correlated crash bursts,
// cluster-leader kills, crash-during-rekey, per-hop message loss, delay
// spikes, and router-level partitions — with every random choice drawn
// from seed-derived sub-RNGs, so two runs with the same configuration
// replay byte-identically (tests compare whole report strings).
//
// After every rekey interval an auditor registry checks the paper's
// claims against the live state:
//
//   - k-consistency — Definition 3 holds for every table entry a churned
//     ID can affect (overlay.CheckConsistencyUnder), with a periodic and
//     final full sweep;
//   - delivery — the interval's data multicast delivered at most one
//     copy per user (Theorem 1), exactly one in fault-free intervals;
//   - coverage — every surviving member that was in the group at rekey
//     time holds the interval's group key (Lemma 3 / Theorem 2), whether
//     it arrived by multicast, unicast recovery, or full resync;
//   - cluster — bottom-cluster leaders are unique, alive, the
//     earliest-joined member of their cluster, and leadership epochs
//     grow monotonically (Appendix B);
//   - ladder — every user that entered recovery either completed a rung
//     or died; no delivery chain is left dangling.
//
// Rekey messages travel the degradation ladder
// (recovery.DistributeLadder): multicast, then per-user unicast recovery
// with capped exponential backoff, then a reliable full resync.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tmesh/internal/eventsim"
	"tmesh/internal/failover"
	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/metrics"
	"tmesh/internal/obs"
	"tmesh/internal/obs/slo"
	"tmesh/internal/obs/trace"
	"tmesh/internal/overlay"
	"tmesh/internal/recovery"
	"tmesh/internal/split"
	"tmesh/internal/tmesh"
	"tmesh/internal/vnet"
)

// Config parameterises a soak session.
type Config struct {
	Params ident.Params
	K      int
	Seed   int64

	Intervals      int
	IntervalLength time.Duration
	InitialMembers int

	// Per-interval churn ceilings; actual counts are drawn uniformly
	// from [0, ceiling].
	MaxJoins, MaxLeaves, MaxCrashes int
	// LeaderKillRate is the probability that a crash targets a current
	// bottom-cluster leader instead of a uniformly random member.
	LeaderKillRate float64
	// BurstRate is the probability that an interval's crashes land as a
	// correlated burst of BurstSize within a few hundred milliseconds.
	BurstRate float64
	BurstSize int

	// HopLoss is the per-hop drop probability applied to multicast hops
	// and recovery unicasts.
	HopLoss float64
	// PartitionRate is the probability that an interval isolates one
	// transit domain for its middle stretch.
	PartitionRate float64
	// SpikeRate and SpikeFactor control delay spikes: with probability
	// SpikeRate an interval multiplies all host-to-host delays by
	// SpikeFactor for its middle stretch.
	SpikeRate   float64
	SpikeFactor float64

	// Failure detection (failover.Config).
	PingInterval time.Duration
	Misses       int

	// Degradation ladder (recovery.LadderConfig).
	Timeout, RetryBase, RetryMax time.Duration
	RetryBudget                  int
	Mode                         split.Mode

	// FullSweepEvery runs the O(N·D·B) full consistency sweep every
	// k-th interval on top of the scoped per-churn checks (0 disables;
	// the final sweep always runs).
	FullSweepEvery int

	// RekeyParallelism bounds the worker fan-out of the key-regeneration
	// stage (keytree.Regenerate) and of the split-index compilation the
	// distribution ladder performs per rekey. Values <= 1 run
	// sequentially; either way the rekey messages and split decisions
	// are byte-identical, so replay comparisons hold across settings.
	RekeyParallelism int

	Topology vnet.GTITMConfig

	// Obs is the optional telemetry registry: phase spans (inject,
	// rekey, deliver, audit), per-auditor pass/fail counters and
	// durations, and the ladder/keytree counters of the stages the soak
	// drives. Nil (the default) disables all instrumentation; the report
	// is byte-identical either way.
	Obs *obs.Registry
	// Sink, when non-nil, receives one structured JSONL record per
	// audited interval. Records carry only deterministic fields (counts,
	// virtual times, audit verdicts) — never wall-clock durations — so
	// seed-identical runs emit byte-identical streams.
	Sink *obs.Sink

	// TraceSink, when non-nil, arms the flight recorder: sampled
	// intervals trace their data probe and rekey ladder hop by hop into
	// this JSONL sink (see internal/obs/trace). Like Sink, records are
	// fully deterministic, and the soak report is byte-identical with
	// tracing on or off.
	TraceSink *obs.Sink
	// TraceSample traces every k-th interval (<= 1 traces all). Only
	// meaningful with TraceSink set.
	TraceSample int
}

// DefaultConfig returns a soak tuned for the acceptance bar: >= 20
// intervals, >= 10k events, every fault class enabled.
func DefaultConfig(seed int64) Config {
	return Config{
		Params:         ident.Params{Digits: 3, Base: 8},
		K:              3,
		Seed:           seed,
		Intervals:      20,
		IntervalLength: 20 * time.Second,
		InitialMembers: 250,
		MaxJoins:       6,
		MaxLeaves:      5,
		MaxCrashes:     3,
		LeaderKillRate: 0.3,
		BurstRate:      0.25,
		BurstSize:      3,
		HopLoss:        0,
		PartitionRate:  0.2,
		SpikeRate:      0.25,
		SpikeFactor:    3,
		PingInterval:   2 * time.Second,
		Misses:         2,
		Timeout:        1500 * time.Millisecond,
		RetryBase:      200 * time.Millisecond,
		RetryMax:       time.Second,
		RetryBudget:    3,
		// The paper's splitting scheme is the thing under test: run the
		// ladder's multicast rung with per-encryption splitting so the
		// Theorem 2 trace audit has real split decisions to check.
		Mode:           split.PerEncryption,
		FullSweepEvery: 5,
		// Exercise the parallel regeneration path by default so the
		// race-enabled soak drives it; determinism auditors confirm the
		// output matches the sequential contract.
		RekeyParallelism: 4,
		Topology: vnet.GTITMConfig{
			TransitDomains:   2,
			TransitPerDomain: 2,
			StubsPerTransit:  2,
			TotalRouters:     120,
			TotalLinks:       300,
			AccessDelayMin:   time.Millisecond,
			AccessDelayMax:   3 * time.Millisecond,
		},
	}
}

// rekeyBatch drives the key tree's staged rekey pipeline (mark, then
// regenerate with the configured fan-out) — the same engine the core
// Group and the experiment harness use. label, when non-empty, tags the
// stages with pprof {group, stage} labels.
func rekeyBatch(tree *keytree.Tree, joins, leaves []ident.ID, parallelism int, label string) (*keytree.Message, error) {
	var plan *keytree.BatchPlan
	var err error
	obs.WithStage(label, "mark", func() { plan, err = tree.Mark(joins, leaves) })
	if err != nil {
		return nil, err
	}
	var msg *keytree.Message
	obs.WithStage(label, "regen", func() { msg, err = tree.Regenerate(plan, parallelism) })
	return msg, err
}

// Interval phase fractions: churn lands in the first 45%, the Theorem 1
// data probe at 50%, the rekey multicast at 60%, and the audit at the
// boundary. Network faults hold over the middle stretch so they overlap
// both multicasts and the recovery ladder.
const (
	phaseChurnStart = 0.05
	phaseChurnEnd   = 0.45
	phaseData       = 0.50
	phaseRekey      = 0.60
	phaseFaultStart = 0.48
	phaseFaultEnd   = 0.85
)

func (c Config) validate() error {
	switch {
	case c.Intervals < 1 || c.InitialMembers < 2:
		return fmt.Errorf("chaos: need >= 1 interval and >= 2 initial members")
	case c.K < 1:
		return fmt.Errorf("chaos: K must be >= 1")
	case c.IntervalLength <= 0:
		return fmt.Errorf("chaos: IntervalLength must be positive")
	case c.MaxJoins < 0 || c.MaxLeaves < 0 || c.MaxCrashes < 0 || c.BurstSize < 0:
		return fmt.Errorf("chaos: churn ceilings must be non-negative")
	case c.HopLoss < 0 || c.HopLoss >= 1:
		return fmt.Errorf("chaos: HopLoss must be in [0, 1)")
	case c.SpikeRate > 0 && c.SpikeFactor < 1:
		return fmt.Errorf("chaos: SpikeFactor must be >= 1")
	}
	// Detections of the last in-window crash must complete before the
	// audit, or the audit would see mid-repair state.
	worstDetect := failover.WorstCaseDetection(failover.Config{
		PingInterval: c.PingInterval, Misses: c.Misses,
	}, 2*c.Topology.AccessDelayMax)
	if frac(c.IntervalLength, phaseChurnEnd)+worstDetect >= c.IntervalLength {
		return fmt.Errorf("chaos: IntervalLength %v too short for detection (worst case %v after churn window)",
			c.IntervalLength, worstDetect)
	}
	// The ladder's worst chain (timeout, all backoffs, resync) must fit
	// between the rekey point and the audit.
	ladderWorst := c.Timeout + time.Duration(c.RetryBudget)*c.RetryMax + time.Second
	if frac(c.IntervalLength, phaseRekey)+ladderWorst >= c.IntervalLength {
		return fmt.Errorf("chaos: IntervalLength %v too short for the recovery ladder (worst chain %v)",
			c.IntervalLength, ladderWorst)
	}
	return nil
}

func frac(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// chaosNet wraps the topology to apply delay spikes: a factor > 1
// scales every host-to-host delay (access delays included via RTT)
// while the router graph, link paths, and host attachments stay fixed.
// Uniform scaling preserves RTT ordering, so neighbor selection is
// unperturbed.
type chaosNet struct {
	vnet.Network
	factor float64
}

func (c *chaosNet) scale(d time.Duration) time.Duration {
	if c.factor <= 1 {
		return d
	}
	return time.Duration(float64(d) * c.factor)
}

func (c *chaosNet) RTT(a, b vnet.HostID) time.Duration    { return c.scale(c.Network.RTT(a, b)) }
func (c *chaosNet) OneWay(a, b vnet.HostID) time.Duration { return c.scale(c.Network.OneWay(a, b)) }
func (c *chaosNet) GatewayRTT(a, b vnet.HostID) time.Duration {
	return c.scale(c.Network.GatewayRTT(a, b))
}

type crashInfo struct {
	id ident.ID
	at time.Duration
}

// Engine runs one soak session. Build with New, run with Run; an Engine
// is single-use and not safe for concurrent use.
type Engine struct {
	cfg Config
	sim *eventsim.Simulator
	top *vnet.GTITM
	net *chaosNet
	dir *overlay.Directory
	mon *failover.Monitor
	// tree is the full modified key tree the real rekey messages come
	// from; mirror tracks bottom clusters for the Appendix B audit.
	tree   *keytree.Tree
	mirror *clusterMirror

	// Seed-derived sub-RNGs, one per concern, so adding draws to one
	// fault class cannot shift every other class's choices.
	memRNG, crashRNG, lossRNG, faultRNG, idRNG *rand.Rand

	freeHosts []vnet.HostID
	killed    map[string]bool // engine-side view of scheduled kills

	partition *vnet.Partition

	// Since-last-rekey batches.
	joinedSince     map[string]overlay.Record
	leftSince       map[string]ident.ID
	crashPending    map[string]crashInfo
	evictedUnbatch  map[string]ident.ID
	inTree          map[string]bool
	churnSinceAudit map[string]ident.ID

	// Live results of the current interval.
	curData     *tmesh.Result
	dataMembers []memberSnap // alive members at data send
	curLadder   *recovery.LadderResult
	rekeyLive   []memberSnap // alive members at rekey send
	lastEpoch   map[string]uint64

	// Per-soak arenas: the data probe and the rekey ladder each keep
	// their own transport arena (their results overlap within an
	// interval), and the split compiler reuses one arena across
	// intervals. Safe because each interval's results are consumed by
	// the audit before the next interval's sends reuse the storage.
	dataArena  *tmesh.Arena
	rekeyArena *tmesh.Arena
	splitArena *split.CompileArena[keycrypt.Encryption]

	// Streaming (constant-memory) delivery-delay percentiles over the
	// whole soak, fed in deterministic member order at each audit so
	// same-seed runs report identical estimates.
	dataDelay  *metrics.StreamingSummary
	keyDelay   *metrics.StreamingSummary
	rekeyStart time.Duration // virtual send time of the current rekey

	// Flight recorder (nil when Config.TraceSink is nil) and the open
	// traces of the current sampled interval.
	trec          *trace.Recorder
	curDataTrace  *trace.Trace
	curRekeyTrace *trace.Trace

	// slo evaluates the per-boundary service objectives. It always runs
	// (its inputs are deterministic counts and sim-time latencies), so
	// the report's verdict totals are byte-identical with the ops plane
	// on or off; the sink and gauges inside are nil-safe.
	slo *slo.Engine
	// profLabel tags pipeline stages with pprof {group, stage} labels
	// when the ops plane is armed (Config.Obs non-nil); empty otherwise,
	// keeping the uninstrumented hop path label-free.
	profLabel string

	auditors []Auditor
	rep      *Report
}

type memberSnap struct {
	id  ident.ID
	key string
}

// New builds a soak engine: topology, directory with the initial
// membership, failure monitor, key tree, and cluster mirror.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	totalHosts := 1 + cfg.InitialMembers + cfg.Intervals*cfg.MaxJoins
	top, err := vnet.NewGTITM(cfg.Topology, totalHosts, cfg.Seed)
	if err != nil {
		return nil, err
	}
	net := &chaosNet{Network: top, factor: 1}
	dir, err := overlay.NewDirectory(cfg.Params, cfg.K, net, 0)
	if err != nil {
		return nil, err
	}
	profLabel := ""
	if cfg.Obs != nil {
		profLabel = "chaos"
	}
	tree, err := keytree.New(cfg.Params, seedBytes(cfg.Seed), keytree.Opts{Obs: cfg.Obs, Label: profLabel})
	if err != nil {
		return nil, err
	}
	mirror, err := newClusterMirror(cfg.Params, seedBytes(cfg.Seed))
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:             cfg,
		sim:             eventsim.New(),
		top:             top,
		net:             net,
		dir:             dir,
		tree:            tree,
		mirror:          mirror,
		memRNG:          rand.New(rand.NewSource(cfg.Seed ^ 0x6d656d)), // "mem"
		crashRNG:        rand.New(rand.NewSource(cfg.Seed ^ 0x637273)), // "crs"
		lossRNG:         rand.New(rand.NewSource(cfg.Seed ^ 0x6c6f73)), // "los"
		faultRNG:        rand.New(rand.NewSource(cfg.Seed ^ 0x666c74)), // "flt"
		idRNG:           rand.New(rand.NewSource(cfg.Seed ^ 0x696473)), // "ids"
		killed:          make(map[string]bool),
		joinedSince:     make(map[string]overlay.Record),
		leftSince:       make(map[string]ident.ID),
		crashPending:    make(map[string]crashInfo),
		evictedUnbatch:  make(map[string]ident.ID),
		inTree:          make(map[string]bool),
		churnSinceAudit: make(map[string]ident.ID),
		lastEpoch:       make(map[string]uint64),
		dataArena:       tmesh.NewArena(cfg.InitialMembers + 1),
		rekeyArena:      tmesh.NewArena(cfg.InitialMembers + 1),
		splitArena:      split.NewCompileArena[keycrypt.Encryption](),
		dataDelay:       metrics.NewStreamingSummary(),
		keyDelay:        metrics.NewStreamingSummary(),
		profLabel:       profLabel,
		rep:             &Report{Seed: cfg.Seed},
	}
	e.slo = slo.New(slo.Config{
		Group: "chaos",
		Sink:  cfg.Sink,
		Obs:   cfg.Obs.Namespace("chaos_"),
	})
	if cfg.TraceSink != nil {
		e.trec = trace.NewRecorder(cfg.Seed, cfg.TraceSink)
	}
	e.auditors = defaultAuditors()
	for _, a := range e.auditors {
		e.rep.Auditors = append(e.rep.Auditors, a.Name)
	}

	// Initial membership, host 0 is the key server.
	for h := 1; h < totalHosts; h++ {
		e.freeHosts = append(e.freeHosts, vnet.HostID(h))
	}
	var initial []ident.ID
	for i := 0; i < cfg.InitialMembers; i++ {
		id, err := e.freeID()
		if err != nil {
			return nil, err
		}
		rec := overlay.Record{Host: e.popHost(), ID: id, JoinTime: 0}
		if err := dir.Join(rec); err != nil {
			return nil, err
		}
		if err := mirror.join(rec); err != nil {
			return nil, err
		}
		initial = append(initial, id)
		e.inTree[id.Key()] = true
	}
	sort.Slice(initial, func(i, j int) bool { return initial[i].Compare(initial[j]) < 0 })
	if _, err := rekeyBatch(tree, initial, nil, cfg.RekeyParallelism, profLabel); err != nil {
		return nil, err
	}
	if _, err := mirror.process(); err != nil {
		return nil, err
	}

	mon, err := failover.New(failover.Config{
		Dir:          dir,
		Sim:          e.sim,
		PingInterval: cfg.PingInterval,
		Misses:       cfg.Misses,
		Rand:         rand.New(rand.NewSource(cfg.Seed ^ 0x70686173)), // "phas"
	})
	if err != nil {
		return nil, err
	}
	e.mon = mon
	return e, nil
}

func seedBytes(seed int64) []byte {
	return []byte(fmt.Sprintf("chaos-%d", seed))
}

func (e *Engine) popHost() vnet.HostID {
	h := e.freeHosts[0]
	e.freeHosts = e.freeHosts[1:]
	return h
}

// freeID draws an unused ID uniformly from the ID space.
func (e *Engine) freeID() (ident.ID, error) {
	for tries := 0; tries < 64*e.cfg.Params.Capacity(); tries++ {
		id, err := ident.FromInt(e.cfg.Params, e.idRNG.Intn(e.cfg.Params.Capacity()))
		if err != nil {
			return ident.ID{}, err
		}
		// The mirror can briefly hold an evicted crasher the engine has
		// not reaped yet; skip those too so dir and mirror never diverge.
		if _, taken := e.dir.Record(id); !taken && !e.mirror.has(id.Key()) {
			return id, nil
		}
	}
	return ident.ID{}, fmt.Errorf("chaos: ID space exhausted (%d members of %d)",
		e.dir.Size(), e.cfg.Params.Capacity())
}

// dropHop is the per-hop loss model shared by both multicasts: a hop is
// lost when the active partition cuts it or the loss coin says so.
func (e *Engine) dropHop(from, to vnet.HostID) bool {
	if e.partition != nil && e.partition.Cuts(from, to) {
		return true
	}
	return e.cfg.HopLoss > 0 && e.lossRNG.Float64() < e.cfg.HopLoss
}

// dropUnicast applies the same model to one recovery exchange with the
// server.
func (e *Engine) dropUnicast(u ident.ID, attempt int) bool {
	rec, ok := e.dir.Record(u)
	if !ok {
		return true
	}
	server := e.dir.Server().Host()
	if e.partition != nil && e.partition.Cuts(server, rec.Host) {
		return true
	}
	return e.cfg.HopLoss > 0 && e.lossRNG.Float64() < e.cfg.HopLoss
}

// alive reports engine-level liveness: not crashed and not scheduled to
// crash (a user with a pending kill still responds until the crash
// fires, but excluding it keeps victim picks and snapshots stable).
func (e *Engine) alive(id ident.ID) bool {
	return e.mon.Alive(id) && !e.killed[id.Key()]
}

// traceInterval reports whether the flight recorder samples the given
// 1-based interval (every TraceSample-th interval, starting at the
// first).
func (e *Engine) traceInterval(index int) bool {
	if e.trec == nil {
		return false
	}
	k := e.cfg.TraceSample
	if k <= 1 {
		return true
	}
	return (index-1)%k == 0
}

// liveMembers returns the alive members in ID order.
func (e *Engine) liveMembers() []ident.ID {
	var out []ident.ID
	for _, id := range e.dir.IDs() {
		if e.alive(id) {
			out = append(out, id)
		}
	}
	return out
}

// Run executes the soak and returns its report.
func (e *Engine) Run() (*Report, error) {
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
			e.sim.Stop()
		}
	}

	L := e.cfg.IntervalLength
	for i := 0; i < e.cfg.Intervals; i++ {
		e.planInterval(i, time.Duration(i)*L, fail)
	}
	e.sim.Run()
	if runErr != nil {
		return nil, runErr
	}

	// End-of-run checks: the queue must have drained (the drain
	// invariant) and the full Definition 3 sweep must pass.
	if n := e.sim.Pending(); n != 0 {
		e.rep.FinalViolations = append(e.rep.FinalViolations,
			fmt.Sprintf("drain: %d events still queued after the session", n))
	}
	if err := e.dir.CheckConsistency(); err != nil {
		e.rep.FinalViolations = append(e.rep.FinalViolations,
			fmt.Sprintf("k-consistency: final full sweep: %v", err))
	}
	e.rep.TotalEvents = e.sim.Processed()
	e.rep.PastClamps = e.sim.PastClamps()
	e.rep.FinalMembers = e.dir.Size()
	e.rep.DataDelayMS = e.dataDelay.Summary()
	e.rep.KeyDelayMS = e.keyDelay.Summary()
	e.rep.SLOOK, e.rep.SLOWarn, e.rep.SLOPage = e.slo.Totals()
	return e.rep, nil
}

// planInterval draws the interval's plan from the sub-RNGs (in a fixed
// order, so plans are independent of execution) and schedules its
// events. start is the interval's base virtual time.
func (e *Engine) planInterval(idx int, start time.Duration, fail func(error)) {
	cfg := e.cfg
	L := cfg.IntervalLength
	at := func(f float64) time.Duration { return start + frac(L, f) }
	churnSpan := frac(L, phaseChurnEnd-phaseChurnStart)

	stats := &IntervalStats{Index: idx + 1, PartitionDomain: -1}
	e.rep.Intervals = append(e.rep.Intervals, IntervalStats{})
	slot := len(e.rep.Intervals) - 1

	// Membership plan.
	nJoins := intn(e.memRNG, cfg.MaxJoins+1)
	nLeaves := intn(e.memRNG, cfg.MaxLeaves+1)
	joinTimes := drawTimes(e.memRNG, nJoins, at(phaseChurnStart), churnSpan)
	leaveTimes := drawTimes(e.memRNG, nLeaves, at(phaseChurnStart), churnSpan)

	// Crash plan: either independent crashes spread over the window or
	// one correlated burst inside a single detection window.
	nCrashes := intn(e.crashRNG, cfg.MaxCrashes+1)
	burst := cfg.BurstSize > 0 && e.crashRNG.Float64() < cfg.BurstRate
	var crashTimes []time.Duration
	if burst {
		stats.Burst = true
		t0 := at(phaseChurnStart) + time.Duration(e.crashRNG.Int63n(int64(churnSpan)))
		for c := 0; c < cfg.BurstSize; c++ {
			crashTimes = append(crashTimes, t0+time.Duration(c)*50*time.Millisecond)
		}
	} else {
		crashTimes = drawTimes(e.crashRNG, nCrashes, at(phaseChurnStart), churnSpan)
	}

	// Network fault plan.
	partitionDomain := -1
	if e.faultRNG.Float64() < cfg.PartitionRate {
		partitionDomain = e.faultRNG.Intn(e.top.NumTransitDomains())
	}
	spike := cfg.SpikeRate > 0 && e.faultRNG.Float64() < cfg.SpikeRate

	for _, t := range joinTimes {
		e.sim.At(t, func(now time.Duration) { e.doJoin(now, stats) })
	}
	for _, t := range leaveTimes {
		e.sim.At(t, func(now time.Duration) { e.doLeave(now, stats, fail) })
	}
	for _, t := range crashTimes {
		e.sim.At(t, func(now time.Duration) { e.doCrash(now, stats, fail) })
	}

	if spike {
		stats.Spike = true
		e.sim.At(at(phaseFaultStart), func(time.Duration) { e.net.factor = cfg.SpikeFactor })
		e.sim.At(at(phaseFaultEnd), func(time.Duration) { e.net.factor = 1 })
	}
	if partitionDomain >= 0 {
		stats.PartitionDomain = partitionDomain
		e.sim.At(at(phaseFaultStart), func(time.Duration) {
			e.partition = vnet.NewPartition(e.top, partitionDomain)
		})
		e.sim.At(at(phaseFaultEnd), func(time.Duration) { e.partition = nil })
	}

	e.sim.At(at(phaseData), func(now time.Duration) { e.doDataProbe(now, stats, fail) })
	e.sim.At(at(phaseRekey), func(now time.Duration) { e.doRekey(now, stats, fail) })
	e.sim.At(start+L, func(now time.Duration) {
		e.doAudit(now, idx, stats)
		e.rep.Intervals[slot] = *stats
	})
}

// intn is rand.Intn tolerant of n == 1 bounds built from zero ceilings.
func intn(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	return rng.Intn(n)
}

func drawTimes(rng *rand.Rand, n int, start, span time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = start + time.Duration(rng.Int63n(int64(span)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e *Engine) doJoin(now time.Duration, stats *IntervalStats) {
	defer e.cfg.Obs.StartSpan("chaos_inject").End()
	if len(e.freeHosts) == 0 {
		return // host pool exhausted; skip silently, counts stay honest
	}
	id, err := e.freeID()
	if err != nil {
		return // ID space exhausted
	}
	rec := overlay.Record{Host: e.popHost(), ID: id, JoinTime: now}
	if err := e.dir.Join(rec); err != nil {
		return
	}
	e.mon.Observe(id)
	delete(e.killed, id.Key()) // reused ID of an evicted crasher starts fresh
	if err := e.mirror.join(rec); err == nil {
		e.joinedSince[id.Key()] = rec
		e.churnSinceAudit[id.Key()] = id
		stats.Joins++
	}
}

func (e *Engine) doLeave(now time.Duration, stats *IntervalStats, fail func(error)) {
	defer e.cfg.Obs.StartSpan("chaos_inject").End()
	live := e.liveMembers()
	if len(live) <= 2 {
		return // keep a quorum so rekeying stays meaningful
	}
	id := live[e.memRNG.Intn(len(live))]
	if err := e.dir.Leave(id); err != nil {
		fail(fmt.Errorf("chaos: leave %v: %w", id, err))
		return
	}
	if err := e.mirror.leave(id); err != nil {
		fail(fmt.Errorf("chaos: mirror leave %v: %w", id, err))
		return
	}
	key := id.Key()
	if e.inTree[key] {
		e.leftSince[key] = id
	}
	delete(e.joinedSince, key)
	e.churnSinceAudit[key] = id
	stats.Leaves++
}

func (e *Engine) doCrash(now time.Duration, stats *IntervalStats, fail func(error)) {
	defer e.cfg.Obs.StartSpan("chaos_inject").End()
	victim, isLeader, ok := e.pickVictim()
	if !ok {
		return
	}
	if err := e.mon.Kill(victim, now); err != nil {
		fail(fmt.Errorf("chaos: kill %v: %w", victim, err))
		return
	}
	e.killed[victim.Key()] = true
	e.crashPending[victim.Key()] = crashInfo{id: victim, at: now}
	e.churnSinceAudit[victim.Key()] = victim
	stats.Crashes++
	if isLeader {
		stats.LeaderKills++
	}
}

// pickVictim selects a crash victim: with LeaderKillRate probability a
// current cluster leader, otherwise a uniformly random live member.
func (e *Engine) pickVictim() (ident.ID, bool, bool) {
	live := e.liveMembers()
	if len(live) <= 2 {
		return ident.ID{}, false, false
	}
	if e.crashRNG.Float64() < e.cfg.LeaderKillRate {
		var leaders []ident.ID
		for _, p := range e.mirror.prefixes() {
			if rec, ok := e.mirror.leader(p); ok && e.alive(rec.ID) {
				leaders = append(leaders, rec.ID)
			}
		}
		if len(leaders) > 0 {
			return leaders[e.crashRNG.Intn(len(leaders))], true, true
		}
	}
	return live[e.crashRNG.Intn(len(live))], false, true
}

// doDataProbe multicasts a data payload (Theorem 1 probe) and snapshots
// who was alive to receive it.
func (e *Engine) doDataProbe(now time.Duration, stats *IntervalStats, fail func(error)) {
	e.dataMembers = e.dataMembers[:0]
	for _, id := range e.liveMembers() {
		e.dataMembers = append(e.dataMembers, memberSnap{id: id, key: id.Key()})
	}
	e.curDataTrace = nil
	if e.traceInterval(stats.Index) {
		e.curDataTrace = e.trec.Begin("data", stats.Index, now, "", nil)
		for _, m := range e.dataMembers {
			e.curDataTrace.Member(m.id)
		}
	}
	res, err := tmesh.Multicast(tmesh.Config[int]{
		Dir:            e.dir,
		SenderIsServer: true,
		Alive:          e.mon.Alive,
		DropHop:        e.dropHop,
		Sim:            e.sim,
		StartAt:        now,
		Obs:            e.cfg.Obs,
		Trace:          e.curDataTrace,
		Arena:          e.dataArena,
	}, 1)
	if err != nil {
		fail(fmt.Errorf("chaos: data multicast: %w", err))
		return
	}
	e.curData = res
}

// doRekey ends the key-management interval: reap evictions, batch the
// churn through the key tree, and distribute the rekey message down the
// degradation ladder.
func (e *Engine) doRekey(now time.Duration, stats *IntervalStats, fail func(error)) {
	e.reapEvictions(fail)
	if _, err := e.mirror.process(); err != nil {
		fail(fmt.Errorf("chaos: mirror process: %w", err))
		return
	}

	joins := make([]ident.ID, 0, len(e.joinedSince))
	for _, rec := range e.joinedSince {
		if _, present := e.dir.Record(rec.ID); present {
			joins = append(joins, rec.ID)
		}
	}
	leaves := make([]ident.ID, 0, len(e.leftSince)+len(e.evictedUnbatch))
	for _, id := range e.leftSince {
		leaves = append(leaves, id)
	}
	for _, id := range e.evictedUnbatch {
		if e.inTree[id.Key()] {
			leaves = append(leaves, id)
		}
	}
	sort.Slice(joins, func(i, j int) bool { return joins[i].Compare(joins[j]) < 0 })
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Compare(leaves[j]) < 0 })

	rekeySpan := e.cfg.Obs.StartSpan("chaos_rekey")
	msg, err := rekeyBatch(e.tree, joins, leaves, e.cfg.RekeyParallelism, e.profLabel)
	rekeySpan.End()
	if err != nil {
		fail(fmt.Errorf("chaos: key tree batch: %w", err))
		return
	}
	for _, id := range joins {
		e.inTree[id.Key()] = true
	}
	for _, id := range leaves {
		delete(e.inTree, id.Key())
	}
	e.joinedSince = make(map[string]overlay.Record)
	e.leftSince = make(map[string]ident.ID)
	e.evictedUnbatch = make(map[string]ident.ID)
	stats.RekeyCost = msg.Cost()

	e.curLadder = nil
	e.curRekeyTrace = nil
	e.rekeyLive = e.rekeyLive[:0]
	if msg.Cost() == 0 {
		return // no churn reached the tree; nothing to distribute
	}
	for _, id := range e.liveMembers() {
		if e.inTree[id.Key()] {
			e.rekeyLive = append(e.rekeyLive, memberSnap{id: id, key: id.Key()})
		}
	}
	if e.traceInterval(stats.Index) {
		e.curRekeyTrace = e.trec.Begin("rekey", stats.Index, now,
			e.cfg.Mode.String(), split.EncIDs(msg.Encryptions))
		for _, m := range e.rekeyLive {
			e.curRekeyTrace.Member(m.id)
		}
	}
	e.rekeyStart = now
	deliverSpan := e.cfg.Obs.StartSpan("chaos_deliver")
	var lr *recovery.LadderResult
	obs.WithStage(e.profLabel, "deliver", func() {
		lr, err = recovery.DistributeLadder(recovery.LadderConfig{
			Dir:              e.dir,
			Sim:              e.sim,
			StartAt:          now,
			Mode:             e.cfg.Mode,
			SplitParallelism: e.cfg.RekeyParallelism,
			DropHop:          e.dropHop,
			Alive:            e.mon.Alive,
			Timeout:          e.cfg.Timeout,
			RetryBase:        e.cfg.RetryBase,
			RetryMax:         e.cfg.RetryMax,
			RetryBudget:      e.cfg.RetryBudget,
			DropUnicast:      e.dropUnicast,
			Obs:              e.cfg.Obs,
			ProfileLabel:     e.profLabel,
			Trace:            e.curRekeyTrace,
			Arena:            e.rekeyArena,
			SplitArena:       e.splitArena,
		}, msg)
	})
	deliverSpan.End()
	if err != nil {
		fail(fmt.Errorf("chaos: rekey distribution: %w", err))
		return
	}
	e.curLadder = lr
}

// reapEvictions notices users the failure machinery has evicted since
// the last reap: they leave the cluster mirror and queue for the next
// key-tree batch.
func (e *Engine) reapEvictions(fail func(error)) {
	var gone []string
	for key, info := range e.crashPending {
		if _, present := e.dir.Record(info.id); !present {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		info := e.crashPending[key]
		if err := e.mirror.leave(info.id); err != nil {
			fail(fmt.Errorf("chaos: mirror evict %v: %w", info.id, err))
			return
		}
		e.evictedUnbatch[key] = info.id
		delete(e.crashPending, key)
	}
}

// reapOrphans force-evicts dead users whose crash is older than one
// full interval: every possible detector either fired or died by then,
// so nobody else will report them (the key server's own rekey-ack
// timeout in a real deployment).
func (e *Engine) reapOrphans(now time.Duration) int {
	cutoff := now - e.cfg.IntervalLength
	var orphans []string
	for key, info := range e.crashPending {
		if info.at <= cutoff {
			orphans = append(orphans, key)
		}
	}
	sort.Strings(orphans)
	n := 0
	for _, key := range orphans {
		if e.mon.EvictIfDead(e.crashPending[key].id) {
			n++
		}
	}
	return n
}

// doAudit closes the interval: reap stragglers, then run every
// registered auditor and record the verdicts.
func (e *Engine) doAudit(now time.Duration, idx int, stats *IntervalStats) {
	auditSpan := e.cfg.Obs.StartSpan("chaos_audit")
	e.rep.OrphanEvicted += e.reapOrphans(now)
	e.reapEvictions(func(error) {})
	stats.Members = e.dir.Size()

	verdicts := make([]auditVerdict, 0, len(e.auditors))
	for _, a := range e.auditors {
		sp := e.cfg.Obs.StartSpan("chaos_audit_" + a.Name)
		err := a.Check(e, idx, stats)
		sp.End()
		v := auditVerdict{Name: a.Name, OK: err == nil}
		if err != nil {
			e.cfg.Obs.Counter("chaos_audit_fail_" + a.Name).Inc()
			v.Violation = err.Error()
			stats.Violations = append(stats.Violations,
				fmt.Sprintf("%s: %v", a.Name, err))
		} else {
			e.cfg.Obs.Counter("chaos_audit_pass_" + a.Name).Inc()
		}
		verdicts = append(verdicts, v)
	}
	auditSpan.End()

	// Emit the interval record while the interval's live state is still
	// around; the fields are all deterministic (see intervalEvent).
	e.emitInterval(stats, verdicts)

	// Close the interval's flight-recorder traces with the survivor set
	// each delivery guarantee applies to — the same sets the delivery
	// and coverage auditors above swept — so the offline trace audit
	// reaches the same verdicts.
	faultFree := stats.PartitionDomain < 0 && e.cfg.HopLoss == 0
	if e.curDataTrace != nil {
		var surv []ident.ID
		for _, m := range e.dataMembers {
			if e.alive(m.id) {
				surv = append(surv, m.id)
			}
		}
		e.curDataTrace.End(surv, faultFree)
		e.curDataTrace = nil
	}
	if e.curRekeyTrace != nil {
		var surv []ident.ID
		for _, m := range e.rekeyLive {
			if !e.alive(m.id) {
				continue
			}
			if _, present := e.dir.Record(m.id); present {
				surv = append(surv, m.id)
			}
		}
		e.curRekeyTrace.End(surv, faultFree)
		e.curRekeyTrace = nil
	}

	// Fold the interval's delivery delays into the soak-wide streaming
	// percentiles. Member order is deterministic (snapshots are in ID
	// order), so the P² marker state — and hence the reported estimates
	// — replays identically for the same seed.
	if e.curData != nil {
		for _, m := range e.dataMembers {
			if st := e.curData.Users[m.key]; st != nil && st.Received > 0 {
				e.dataDelay.Observe(float64(st.Delay) / float64(time.Millisecond))
			}
		}
	}
	var keyLat []float64
	if e.curLadder != nil {
		for _, m := range e.rekeyLive {
			if at, ok := e.curLadder.DeliveredAt[m.key]; ok {
				d := float64(at-e.rekeyStart) / float64(time.Millisecond)
				e.keyDelay.Observe(d)
				keyLat = append(keyLat, d)
			}
		}
	}

	// Close the boundary against the service objectives. Expected is the
	// set of surviving in-tree members the coverage auditor swept (owed
	// the interval's key); Delivered are those the ladder reached. All
	// inputs are deterministic, so the verdict — and the "slo" record
	// emitted right after the interval record — replays byte-identically.
	sb := slo.Boundary{
		Boundary:    stats.Index,
		Members:     stats.Members,
		Escalations: stats.KeyByUnicast + stats.KeyByResync,
		RekeyCost:   stats.RekeyCost,
		LatenciesMS: keyLat,
	}
	if lr := e.curLadder; lr != nil {
		sb.DeadInFlight = len(lr.DeadInFlight)
		for _, m := range e.rekeyLive {
			if !e.alive(m.id) {
				continue
			}
			if _, present := e.dir.Record(m.id); !present {
				continue
			}
			sb.Expected++
			if _, got := lr.DeliveredAt[m.key]; got {
				sb.Delivered++
			}
		}
	}
	e.slo.Observe(sb)

	// Reset per-interval state the auditors consumed.
	e.churnSinceAudit = make(map[string]ident.ID)
	e.curData = nil
	e.curLadder = nil
}

// auditVerdict is one auditor's outcome inside an interval event.
type auditVerdict struct {
	Name      string `json:"name"`
	OK        bool   `json:"ok"`
	Violation string `json:"violation,omitempty"`
}

// intervalEvent is the JSONL record of one audited interval. Every
// field is derived from the deterministic simulation (counts, virtual
// times, audit verdicts) — wall-clock durations stay in the registry,
// so seed-identical soaks emit byte-identical streams.
type intervalEvent struct {
	Kind            string         `json:"kind"` // always "interval"
	Interval        int            `json:"interval"`
	Members         int            `json:"members"`
	Joins           int            `json:"joins"`
	Leaves          int            `json:"leaves"`
	Crashes         int            `json:"crashes"`
	LeaderKills     int            `json:"leader_kills"`
	Burst           bool           `json:"burst,omitempty"`
	PartitionDomain int            `json:"partition_domain"`
	Spike           bool           `json:"spike,omitempty"`
	RekeyCost       int            `json:"rekey_cost"`
	DataDelivered   int            `json:"data_delivered"`
	DataLost        int            `json:"data_lost"`
	KeyByMulticast  int            `json:"key_by_multicast"`
	KeyByUnicast    int            `json:"key_by_unicast"`
	KeyByResync     int            `json:"key_by_resync"`
	UnicastAttempts int            `json:"unicast_attempts"`
	Retries         int            `json:"retries"`
	DeadInFlight    int            `json:"dead_in_flight"`
	MaxBackoffNS    int64          `json:"max_backoff_ns"`
	LadderRung      string         `json:"ladder_rung"` // deepest rung reached
	ForwardedEncs   int            `json:"forwarded_encryptions"`
	Audits          []auditVerdict `json:"audits"`
}

// emitInterval writes one interval record to the configured sink. Call
// it before the per-interval state resets; no-op when Sink is nil.
func (e *Engine) emitInterval(stats *IntervalStats, verdicts []auditVerdict) {
	if e.cfg.Sink == nil {
		return
	}
	ev := intervalEvent{
		Kind:            "interval",
		Interval:        stats.Index,
		Members:         stats.Members,
		Joins:           stats.Joins,
		Leaves:          stats.Leaves,
		Crashes:         stats.Crashes,
		LeaderKills:     stats.LeaderKills,
		Burst:           stats.Burst,
		PartitionDomain: stats.PartitionDomain,
		Spike:           stats.Spike,
		RekeyCost:       stats.RekeyCost,
		DataDelivered:   stats.DataDelivered,
		DataLost:        stats.DataLost,
		KeyByMulticast:  stats.KeyByMulticast,
		KeyByUnicast:    stats.KeyByUnicast,
		KeyByResync:     stats.KeyByResync,
		UnicastAttempts: stats.UnicastAttempts,
		Retries:         stats.Retries,
		MaxBackoffNS:    int64(stats.MaxBackoff),
		LadderRung:      "none",
		Audits:          verdicts,
	}
	switch {
	case stats.KeyByResync > 0:
		ev.LadderRung = "resync"
	case stats.KeyByUnicast > 0:
		ev.LadderRung = "unicast"
	case stats.KeyByMulticast > 0:
		ev.LadderRung = "multicast"
	}
	if lr := e.curLadder; lr != nil {
		ev.DeadInFlight = len(lr.DeadInFlight)
		if lr.Multicast != nil {
			for _, st := range lr.Multicast.Users {
				ev.ForwardedEncs += st.UnitsForwarded
			}
		}
	}
	e.cfg.Sink.Emit(ev)
}
