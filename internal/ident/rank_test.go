package ident

import (
	"math/rand"
	"testing"
)

func TestRankTableAssignRelease(t *testing.T) {
	p := Params{Digits: 3, Base: 8}
	rt := NewRankTable(0)

	a := MustNew(p, []Digit{0, 0, 1})
	b := MustNew(p, []Digit{0, 0, 2})
	c := MustNew(p, []Digit{0, 0, 3})

	if r := rt.Assign(a); r != 0 {
		t.Fatalf("first rank = %d, want 0", r)
	}
	if r := rt.Assign(b); r != 1 {
		t.Fatalf("second rank = %d, want 1", r)
	}
	if r := rt.Assign(a); r != 0 {
		t.Fatalf("re-assign of held ID returned %d, want its existing rank 0", r)
	}
	if rt.Len() != 2 || rt.Width() != 2 {
		t.Fatalf("Len=%d Width=%d, want 2/2", rt.Len(), rt.Width())
	}

	// Release frees the rank; the next assign reuses it.
	r, ok := rt.Release(a)
	if !ok || r != 0 {
		t.Fatalf("Release(a) = %d,%v, want 0,true", r, ok)
	}
	if _, ok := rt.RankOf(a); ok {
		t.Fatal("released ID still holds a rank")
	}
	if _, ok := rt.IDOf(0); ok {
		t.Fatal("freed rank still resolves to an ID")
	}
	if r := rt.Assign(c); r != 0 {
		t.Fatalf("rank after release = %d, want reused 0", r)
	}
	if rt.Width() != 2 {
		t.Fatalf("Width grew to %d despite reuse", rt.Width())
	}
	if _, ok := rt.Release(a); ok {
		t.Fatal("double release reported ok")
	}
	if err := rt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRankTableIDOfOutOfRange(t *testing.T) {
	rt := NewRankTable(4)
	if _, ok := rt.IDOf(17); ok {
		t.Fatal("IDOf beyond width reported ok")
	}
	if _, ok := rt.IDOf(NoRank); ok {
		t.Fatal("IDOf(NoRank) reported ok")
	}
}

// TestRankTableChurnProperty drives 10k random join/leave intervals and
// checks, throughout, that the ID↔rank mapping round-trips and the free
// list stays exact — the rank-lifecycle contract every rank-indexed
// structure depends on.
func TestRankTableChurnProperty(t *testing.T) {
	p := Params{Digits: 3, Base: 16}
	rt := NewRankTable(0)
	rng := rand.New(rand.NewSource(42))
	members := make(map[string]ID)
	var keys []string // stable iteration/order for deterministic picks

	for interval := 0; interval < 10000; interval++ {
		joins := rng.Intn(4)
		leaves := rng.Intn(4)
		for j := 0; j < joins; j++ {
			id, err := FromInt(p, rng.Intn(p.Capacity()))
			if err != nil {
				t.Fatal(err)
			}
			if _, in := members[id.Key()]; in {
				continue
			}
			rt.Assign(id)
			members[id.Key()] = id
			keys = append(keys, id.Key())
		}
		for l := 0; l < leaves && len(keys) > 0; l++ {
			i := rng.Intn(len(keys))
			id := members[keys[i]]
			if _, ok := rt.Release(id); !ok {
				t.Fatalf("interval %d: member %v held no rank", interval, id)
			}
			delete(members, keys[i])
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}

		if rt.Len() != len(members) {
			t.Fatalf("interval %d: Len=%d, members=%d", interval, rt.Len(), len(members))
		}
		// Spot-check round-trips every interval; full consistency sweep
		// periodically (it walks the whole table).
		for _, key := range keys[:min(len(keys), 8)] {
			id := members[key]
			r, ok := rt.RankOf(id)
			if !ok {
				t.Fatalf("interval %d: %v lost its rank", interval, id)
			}
			back, ok := rt.IDOf(r)
			if !ok || !back.Equal(id) {
				t.Fatalf("interval %d: rank %d of %v resolves to %v", interval, r, id, back)
			}
		}
		if interval%500 == 0 {
			if err := rt.CheckConsistency(); err != nil {
				t.Fatalf("interval %d: %v", interval, err)
			}
		}
	}
	if err := rt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The dense range never exceeds the high-water membership by more
	// than transient churn.
	if rt.Width() > len(members)+10000 {
		t.Fatalf("width %d looks unbounded for %d members", rt.Width(), len(members))
	}
}
