// Package ident implements the user identification scheme of the T-mesh
// group rekeying system: fixed-length user IDs made of D digits of base B,
// ID prefixes, and the conceptual ID tree (Definitions 1 and 2 of the
// paper).
//
// Every user in a group holds a unique ID of exactly D digits. Digits are
// counted from left to right, the leftmost digit being digit 0. All user IDs
// and their prefixes form the ID tree: the root is the empty prefix "[]",
// a node at level i is a prefix of i digits, and the leaf nodes at level D
// are the user IDs themselves. The same scheme identifies keys of the
// modified key tree and the encryptions generated during rekeying, which is
// what makes stateless rekey-message splitting possible (Lemma 3).
package ident

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Digit is one position of a user ID. The paper uses base B = 256, so a
// single byte per digit is always sufficient; the type is widened to allow
// intermediate arithmetic without casts.
type Digit = int

// Params fixes the shape of the ID space for one group: IDs have exactly
// Digits digits, each in [0, Base).
type Params struct {
	// Digits is D, the number of digits in a user ID. Must be >= 1.
	Digits int
	// Base is B, the base of each digit. Must be >= 2.
	Base int
}

// DefaultParams are the values used throughout the paper's simulations:
// D = 5 and B = 256.
var DefaultParams = Params{Digits: 5, Base: 256}

// Validate reports whether the parameters describe a usable ID space.
func (p Params) Validate() error {
	if p.Digits < 1 {
		return fmt.Errorf("ident: Digits must be >= 1, got %d", p.Digits)
	}
	if p.Base < 2 {
		return fmt.Errorf("ident: Base must be >= 2, got %d", p.Base)
	}
	return nil
}

// Capacity returns the number of distinct IDs, saturating at the maximum
// int value on overflow.
func (p Params) Capacity() int {
	cap := 1
	for i := 0; i < p.Digits; i++ {
		next := cap * p.Base
		if next/p.Base != cap {
			return int(^uint(0) >> 1)
		}
		cap = next
	}
	return cap
}

// ID is a complete user ID: exactly D digits of base B. The zero value is
// not a valid ID; construct IDs with New, Parse, or FromInt.
//
// An ID is immutable after construction; all methods treat the receiver as
// read-only.
type ID struct {
	digits string // one byte per digit; base <= 256 always holds
}

// Prefix is the first l digits of an ID, 0 <= l <= D. The empty prefix
// (the paper's "[]") is the ID of the tree root, of the key server, and of
// the group key. Prefix values are comparable with == and usable as map
// keys, which the overlay and key tree rely on.
type Prefix struct {
	digits string
}

// EmptyPrefix is the null-string prefix "[]" — the root of the ID tree.
var EmptyPrefix = Prefix{}

// ErrBadDigit is returned when a digit is outside [0, Base).
var ErrBadDigit = errors.New("ident: digit out of range")

// New builds an ID from the given digits. It returns an error unless
// len(digits) == p.Digits and every digit is in [0, p.Base).
func New(p Params, digits []Digit) (ID, error) {
	if len(digits) != p.Digits {
		return ID{}, fmt.Errorf("ident: ID needs exactly %d digits, got %d", p.Digits, len(digits))
	}
	var b strings.Builder
	b.Grow(len(digits))
	for i, d := range digits {
		if d < 0 || d >= p.Base {
			return ID{}, fmt.Errorf("%w: digit %d is %d, base %d", ErrBadDigit, i, d, p.Base)
		}
		b.WriteByte(byte(d))
	}
	return ID{digits: b.String()}, nil
}

// MustNew is New but panics on error. It is intended for tests and for
// literals whose validity is clear from the call site.
func MustNew(p Params, digits []Digit) ID {
	id, err := New(p, digits)
	if err != nil {
		panic(err)
	}
	return id
}

// FromInt builds the ID whose digits are the base-B representation of n,
// most significant digit first. It errors if n is negative or does not fit
// in D digits. It is a convenient way to enumerate distinct IDs in tests.
func FromInt(p Params, n int) (ID, error) {
	if n < 0 {
		return ID{}, fmt.Errorf("ident: FromInt needs n >= 0, got %d", n)
	}
	digits := make([]Digit, p.Digits)
	for i := p.Digits - 1; i >= 0; i-- {
		digits[i] = n % p.Base
		n /= p.Base
	}
	if n != 0 {
		return ID{}, fmt.Errorf("ident: value does not fit in %d base-%d digits", p.Digits, p.Base)
	}
	return New(p, digits)
}

// Parse reads the textual form produced by String: "[d0,d1,...]" with
// decimal digits.
func Parse(p Params, s string) (ID, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return ID{}, fmt.Errorf("ident: malformed ID %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return ID{}, fmt.Errorf("ident: ID %q has no digits", s)
	}
	parts := strings.Split(body, ",")
	digits := make([]Digit, 0, len(parts))
	for _, part := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return ID{}, fmt.Errorf("ident: malformed ID %q: %w", s, err)
		}
		digits = append(digits, d)
	}
	return New(p, digits)
}

// Len returns D, the number of digits.
func (id ID) Len() int { return len(id.digits) }

// Digit returns the i-th digit (0-based, counted from the left, as in the
// paper's u.ID[i]).
func (id ID) Digit(i int) Digit { return Digit(id.digits[i]) }

// Digits returns a fresh slice of all digits.
func (id ID) Digits() []Digit {
	out := make([]Digit, len(id.digits))
	for i := range id.digits {
		out[i] = Digit(id.digits[i])
	}
	return out
}

// Prefix returns the prefix of the first l digits, the paper's
// u.ID[0 : l-1]. l = 0 yields the empty prefix; l = D yields the whole ID
// as a prefix.
func (id ID) Prefix(l int) Prefix {
	return Prefix{digits: id.digits[:l]}
}

// AsPrefix returns the full ID viewed as a level-D prefix.
func (id ID) AsPrefix() Prefix { return Prefix{digits: id.digits} }

// HasPrefix reports whether p is a prefix of the ID. Every ID has the
// empty prefix.
func (id ID) HasPrefix(p Prefix) bool {
	return strings.HasPrefix(id.digits, p.digits)
}

// CommonPrefixLen returns the number of leading digits shared by two IDs.
func (id ID) CommonPrefixLen(other ID) int {
	n := min(len(id.digits), len(other.digits))
	for i := 0; i < n; i++ {
		if id.digits[i] != other.digits[i] {
			return i
		}
	}
	return n
}

// Equal reports whether two IDs are identical.
func (id ID) Equal(other ID) bool { return id.digits == other.digits }

// IsZero reports whether the ID is the zero value (i.e. unset, as opposed
// to the all-zero-digits ID, which is valid).
func (id ID) IsZero() bool { return id.digits == "" }

// Compare orders IDs lexicographically by digits; it returns -1, 0, or +1.
func (id ID) Compare(other ID) int { return strings.Compare(id.digits, other.digits) }

// String renders the ID in the paper's notation, e.g. "[0,2,1]".
func (id ID) String() string { return formatDigits(id.digits) }

// Key returns a compact comparable representation suitable for map keys.
func (id ID) Key() string { return id.digits }

// Len returns the number of digits in the prefix (its level in the ID
// tree).
func (p Prefix) Len() int { return len(p.digits) }

// Digit returns the i-th digit of the prefix.
func (p Prefix) Digit(i int) Digit { return Digit(p.digits[i]) }

// IsEmpty reports whether this is the null-string prefix "[]".
func (p Prefix) IsEmpty() bool { return p.digits == "" }

// Child returns the prefix extended with one more digit.
func (p Prefix) Child(d Digit) Prefix {
	// Note: string([]byte{...}), not string(byte(...)) — the latter
	// would UTF-8-encode digits >= 128 into two bytes.
	return Prefix{digits: p.digits + string([]byte{byte(d)})}
}

// Parent returns the prefix with the last digit removed. The parent of the
// empty prefix is the empty prefix itself.
func (p Prefix) Parent() Prefix {
	if p.digits == "" {
		return p
	}
	return Prefix{digits: p.digits[:len(p.digits)-1]}
}

// LastDigit returns the final digit of a non-empty prefix.
func (p Prefix) LastDigit() Digit { return Digit(p.digits[len(p.digits)-1]) }

// HasPrefix reports whether q is a prefix of p. A prefix is a prefix of
// itself; the empty prefix is a prefix of everything.
func (p Prefix) HasPrefix(q Prefix) bool {
	return strings.HasPrefix(p.digits, q.digits)
}

// IsPrefixOfID reports whether p is a prefix of the ID.
func (p Prefix) IsPrefixOfID(id ID) bool { return id.HasPrefix(p) }

// Related reports whether one of p, q is a prefix of the other. This is
// exactly the test of Theorem 2 that decides whether an encryption must be
// forwarded toward a subtree.
func (p Prefix) Related(q Prefix) bool {
	return p.HasPrefix(q) || q.HasPrefix(p)
}

// String renders the prefix in the paper's notation; the empty prefix is
// "[]".
func (p Prefix) String() string { return formatDigits(p.digits) }

// Key returns a compact comparable representation suitable for map keys.
func (p Prefix) Key() string { return p.digits }

// PrefixFromKey reconstructs a Prefix from the value returned by
// Prefix.Key.
func PrefixFromKey(k string) Prefix { return Prefix{digits: k} }

// IDFromKey reconstructs an ID from the value returned by ID.Key.
func IDFromKey(k string) ID { return ID{digits: k} }

// PrefixOf builds a prefix directly from digits; it errors if any digit is
// out of range or if there are more than p.Digits of them.
func PrefixOf(p Params, digits []Digit) (Prefix, error) {
	if len(digits) > p.Digits {
		return Prefix{}, fmt.Errorf("ident: prefix of %d digits exceeds D=%d", len(digits), p.Digits)
	}
	var b strings.Builder
	b.Grow(len(digits))
	for i, d := range digits {
		if d < 0 || d >= p.Base {
			return Prefix{}, fmt.Errorf("%w: digit %d is %d, base %d", ErrBadDigit, i, d, p.Base)
		}
		b.WriteByte(byte(d))
	}
	return Prefix{digits: b.String()}, nil
}

// FullID converts a level-D prefix back into an ID. It errors if the
// prefix is shorter than D digits.
func (p Prefix) FullID(params Params) (ID, error) {
	if len(p.digits) != params.Digits {
		return ID{}, fmt.Errorf("ident: prefix %v has %d digits, want %d", p, len(p.digits), params.Digits)
	}
	return ID{digits: p.digits}, nil
}

func formatDigits(digits string) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < len(digits); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(digits[i])))
	}
	b.WriteByte(']')
	return b.String()
}
