package ident

import "fmt"

// Rank is a dense per-member index: the group's current members are
// assigned ranks 0..n-1 (with holes only where churn outpaces reuse), so
// hot per-member state can live in flat, preallocated slices indexed by
// rank instead of string-keyed heap maps. A member keeps its rank for as
// long as it stays in the group; the rank returns to a free list when the
// member leaves and is reused by a later joiner.
//
// Ranks are an implementation-layer notion: nothing in the protocol (IDs,
// prefixes, split decisions, key derivation) depends on them, so two runs
// that process the same joins and leaves in the same order assign the same
// ranks — rank assignment is as deterministic as the membership sequence
// that drives it.
type Rank uint32

// NoRank is the sentinel for "this ID holds no rank".
const NoRank = Rank(^uint32(0))

// RankTable is the bidirectional ID↔rank mapping with a free list. It is
// the single allocator of ranks for one group; every structure that wants
// rank-indexed storage shares one table (or owns a private one) and sizes
// its slices to the table's Width.
//
// A RankTable is not safe for concurrent mutation. Concurrent reads
// (RankOf/IDOf) are safe between mutations, which matches the rekey
// pipeline's shape: membership changes happen in the single-threaded mark
// stage; the parallel stages only read.
type RankTable struct {
	byID map[string]Rank
	ids  []ID   // rank -> ID; zero ID for free slots
	free []Rank // released ranks, reused LIFO
}

// NewRankTable creates an empty table. capacityHint pre-sizes the
// internal storage (0 is fine).
func NewRankTable(capacityHint int) *RankTable {
	if capacityHint < 0 {
		capacityHint = 0
	}
	return &RankTable{
		byID: make(map[string]Rank, capacityHint),
		ids:  make([]ID, 0, capacityHint),
	}
}

// Len returns the number of IDs currently holding a rank.
func (rt *RankTable) Len() int { return len(rt.byID) }

// Width returns the size a rank-indexed slice must have to be indexable
// by every rank the table has ever assigned: max assigned rank + 1. Width
// never shrinks, so slices sized once per growth high-water mark stay
// valid across churn.
func (rt *RankTable) Width() int { return len(rt.ids) }

// Assign gives the ID a rank, reusing the most recently freed rank if one
// exists and extending the dense range otherwise. Assigning an ID that
// already holds a rank returns its current rank unchanged.
func (rt *RankTable) Assign(id ID) Rank {
	if r, ok := rt.byID[id.Key()]; ok {
		return r
	}
	var r Rank
	if n := len(rt.free); n > 0 {
		r = rt.free[n-1]
		rt.free = rt.free[:n-1]
	} else {
		r = Rank(len(rt.ids))
		rt.ids = append(rt.ids, ID{})
	}
	rt.ids[r] = id
	rt.byID[id.Key()] = r
	return r
}

// Release returns the ID's rank to the free list. ok is false if the ID
// held no rank.
func (rt *RankTable) Release(id ID) (Rank, bool) {
	r, ok := rt.byID[id.Key()]
	if !ok {
		return NoRank, false
	}
	delete(rt.byID, id.Key())
	rt.ids[r] = ID{}
	rt.free = append(rt.free, r)
	return r, true
}

// RankOf returns the ID's current rank.
func (rt *RankTable) RankOf(id ID) (Rank, bool) {
	r, ok := rt.byID[id.Key()]
	if !ok {
		return NoRank, false
	}
	return r, true
}

// RankOfKey is RankOf for callers that already hold the ID's digit key
// (e.g. a full-length Prefix), avoiding an ID conversion.
func (rt *RankTable) RankOfKey(key string) (Rank, bool) {
	r, ok := rt.byID[key]
	if !ok {
		return NoRank, false
	}
	return r, true
}

// IDOf returns the ID holding the rank; ok is false for free or
// never-assigned ranks.
func (rt *RankTable) IDOf(r Rank) (ID, bool) {
	if int(r) >= len(rt.ids) {
		return ID{}, false
	}
	id := rt.ids[r]
	return id, !id.IsZero()
}

// Each calls fn for every (ID, rank) pair in rank order. Mutating the
// table during iteration is not allowed.
func (rt *RankTable) Each(fn func(id ID, r Rank)) {
	for i, id := range rt.ids {
		if !id.IsZero() {
			fn(id, Rank(i))
		}
	}
}

// CheckConsistency verifies the bidirectional invariant: every mapped ID
// round-trips through its rank, every occupied slot is mapped, and the
// free list holds exactly the unoccupied slots. It returns the first
// violation, or nil. Intended for tests and audits.
func (rt *RankTable) CheckConsistency() error {
	occupied := 0
	for i, id := range rt.ids {
		if id.IsZero() {
			continue
		}
		occupied++
		r, ok := rt.byID[id.Key()]
		if !ok {
			return fmt.Errorf("ident: rank %d holds %v but the ID is unmapped", i, id)
		}
		if r != Rank(i) {
			return fmt.Errorf("ident: rank %d holds %v, which maps to rank %d", i, id, r)
		}
	}
	if occupied != len(rt.byID) {
		return fmt.Errorf("ident: %d occupied slots for %d mapped IDs", occupied, len(rt.byID))
	}
	if got, want := len(rt.free), len(rt.ids)-occupied; got != want {
		return fmt.Errorf("ident: free list has %d ranks, want %d", got, want)
	}
	seen := make(map[Rank]bool, len(rt.free))
	for _, r := range rt.free {
		if int(r) >= len(rt.ids) {
			return fmt.Errorf("ident: free rank %d beyond width %d", r, len(rt.ids))
		}
		if !rt.ids[r].IsZero() {
			return fmt.Errorf("ident: free rank %d is occupied by %v", r, rt.ids[r])
		}
		if seen[r] {
			return fmt.Errorf("ident: rank %d on the free list twice", r)
		}
		seen[r] = true
	}
	return nil
}
