package ident

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"default", DefaultParams, false},
		{"minimal", Params{Digits: 1, Base: 2}, false},
		{"zero digits", Params{Digits: 0, Base: 2}, true},
		{"negative digits", Params{Digits: -1, Base: 2}, true},
		{"base one", Params{Digits: 3, Base: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParamsCapacity(t *testing.T) {
	tests := []struct {
		p    Params
		want int
	}{
		{Params{Digits: 1, Base: 2}, 2},
		{Params{Digits: 3, Base: 4}, 64},
		{Params{Digits: 2, Base: 256}, 65536},
	}
	for _, tt := range tests {
		if got := tt.p.Capacity(); got != tt.want {
			t.Errorf("Capacity(%+v) = %d, want %d", tt.p, got, tt.want)
		}
	}
	// Overflow saturates instead of wrapping.
	huge := Params{Digits: 64, Base: 256}
	if got := huge.Capacity(); got <= 0 {
		t.Errorf("Capacity overflow should saturate positive, got %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	p := Params{Digits: 3, Base: 4}
	if _, err := New(p, []Digit{0, 1}); err == nil {
		t.Error("New with too few digits should fail")
	}
	if _, err := New(p, []Digit{0, 1, 4}); err == nil {
		t.Error("New with out-of-range digit should fail")
	}
	if _, err := New(p, []Digit{0, 1, -1}); err == nil {
		t.Error("New with negative digit should fail")
	}
	id, err := New(p, []Digit{3, 2, 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := id.String(); got != "[3,2,1]" {
		t.Errorf("String() = %q, want [3,2,1]", got)
	}
}

func TestFromIntRoundTrip(t *testing.T) {
	p := Params{Digits: 3, Base: 5}
	seen := make(map[string]bool)
	for n := 0; n < p.Capacity(); n++ {
		id, err := FromInt(p, n)
		if err != nil {
			t.Fatalf("FromInt(%d): %v", n, err)
		}
		if seen[id.Key()] {
			t.Fatalf("FromInt(%d) collides: %v", n, id)
		}
		seen[id.Key()] = true
	}
	if _, err := FromInt(p, p.Capacity()); err == nil {
		t.Error("FromInt beyond capacity should fail")
	}
	if _, err := FromInt(p, -1); err == nil {
		t.Error("FromInt(-1) should fail")
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := Params{Digits: 4, Base: 256}
	id := MustNew(p, []Digit{0, 255, 17, 3})
	got, err := Parse(p, id.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", id.String(), err)
	}
	if !got.Equal(id) {
		t.Errorf("Parse(String()) = %v, want %v", got, id)
	}
	for _, bad := range []string{"", "[]", "0,1,2,3", "[0,1,2]", "[0,1,2,x]", "[0,1,2,300]"} {
		if _, err := Parse(p, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPrefixOperations(t *testing.T) {
	p := Params{Digits: 4, Base: 10}
	id := MustNew(p, []Digit{1, 2, 3, 4})

	if got := id.Prefix(0); !got.IsEmpty() {
		t.Errorf("Prefix(0) = %v, want empty", got)
	}
	pre := id.Prefix(2)
	if pre.String() != "[1,2]" {
		t.Errorf("Prefix(2) = %v, want [1,2]", pre)
	}
	if !id.HasPrefix(pre) {
		t.Error("ID should have its own prefix")
	}
	if !id.HasPrefix(EmptyPrefix) {
		t.Error("every ID has the empty prefix")
	}
	other := MustNew(p, []Digit{1, 2, 9, 9})
	if got := id.CommonPrefixLen(other); got != 2 {
		t.Errorf("CommonPrefixLen = %d, want 2", got)
	}
	if pre.Child(7).String() != "[1,2,7]" {
		t.Errorf("Child(7) = %v", pre.Child(7))
	}
	if pre.Child(7).Parent() != pre {
		t.Error("Parent(Child(d)) should round-trip")
	}
	if EmptyPrefix.Parent() != EmptyPrefix {
		t.Error("parent of empty prefix is itself")
	}
	if pre.Child(7).LastDigit() != 7 {
		t.Errorf("LastDigit = %d, want 7", pre.Child(7).LastDigit())
	}
	full := id.AsPrefix()
	back, err := full.FullID(p)
	if err != nil || !back.Equal(id) {
		t.Errorf("FullID round trip = %v, %v", back, err)
	}
	if _, err := pre.FullID(p); err == nil {
		t.Error("FullID of short prefix should fail")
	}
}

func TestPrefixRelated(t *testing.T) {
	p := Params{Digits: 3, Base: 4}
	a, _ := PrefixOf(p, []Digit{1, 2})
	b, _ := PrefixOf(p, []Digit{1})
	c, _ := PrefixOf(p, []Digit{1, 3})
	if !a.Related(b) || !b.Related(a) {
		t.Error("ancestor/descendant prefixes must be related")
	}
	if a.Related(c) {
		t.Error("sibling prefixes must not be related")
	}
	if !a.Related(a) {
		t.Error("a prefix is related to itself")
	}
	if !EmptyPrefix.Related(a) {
		t.Error("the empty prefix is related to everything")
	}
}

// Property: for random IDs, u.HasPrefix(u.Prefix(l)) for every l, and
// CommonPrefixLen is symmetric and consistent with digit equality.
func TestPrefixProperties(t *testing.T) {
	p := Params{Digits: 5, Base: 8}
	rng := rand.New(rand.NewSource(7))
	randomID := func() ID {
		digits := make([]Digit, p.Digits)
		for i := range digits {
			digits[i] = rng.Intn(p.Base)
		}
		return MustNew(p, digits)
	}
	prop := func() bool {
		u, w := randomID(), randomID()
		for l := 0; l <= p.Digits; l++ {
			if !u.HasPrefix(u.Prefix(l)) {
				return false
			}
		}
		cl := u.CommonPrefixLen(w)
		if cl != w.CommonPrefixLen(u) {
			return false
		}
		for i := 0; i < cl; i++ {
			if u.Digit(i) != w.Digit(i) {
				return false
			}
		}
		if cl < p.Digits && u.Digit(cl) == w.Digit(cl) {
			return false
		}
		// w has u's prefix exactly up to the common length.
		return w.HasPrefix(u.Prefix(cl)) && (cl == p.Digits || !w.HasPrefix(u.Prefix(cl+1)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Digits >= 128 must occupy exactly one byte in prefix keys (regression:
// string(byte(d)) would UTF-8-encode them into two bytes, making
// Child/key lookups disagree with IDs built from digits).
func TestHighDigitPrefixConsistency(t *testing.T) {
	p := Params{Digits: 3, Base: 256}
	for _, d := range []Digit{0, 127, 128, 147, 255} {
		id := MustNew(p, []Digit{d, d, d})
		if got := EmptyPrefix.Child(d); got.Key() != id.Prefix(1).Key() {
			t.Errorf("Child(%d) key %q != Prefix(1) key %q", d, got.Key(), id.Prefix(1).Key())
		}
		if got := EmptyPrefix.Child(d).Child(d).Child(d); got.Key() != id.Key() {
			t.Errorf("chained Child(%d) != full ID key", d)
		}
		if EmptyPrefix.Child(d).Len() != 1 {
			t.Errorf("Child(%d) has length %d, want 1", d, EmptyPrefix.Child(d).Len())
		}
		if EmptyPrefix.Child(d).LastDigit() != d {
			t.Errorf("LastDigit(%d) = %d", d, EmptyPrefix.Child(d).LastDigit())
		}
	}
}

func TestSubtreeOf(t *testing.T) {
	p := Params{Digits: 3, Base: 4}
	u := MustNew(p, []Digit{2, 1, 0})
	// (0,j)-ID subtree of u is the level-1 subtree [j].
	if got := SubtreeOf(u, 0, 3).String(); got != "[3]" {
		t.Errorf("SubtreeOf(u,0,3) = %s, want [3]", got)
	}
	// (1,j) shares u's first digit.
	if got := SubtreeOf(u, 1, 3).String(); got != "[2,3]" {
		t.Errorf("SubtreeOf(u,1,3) = %s, want [2,3]", got)
	}
	if got := SubtreeOf(u, 2, 2).String(); got != "[2,1,2]" {
		t.Errorf("SubtreeOf(u,2,2) = %s, want [2,1,2]", got)
	}
}
