package ident

import (
	"math/rand"
	"testing"
)

// paperTree reproduces the five-user example of Fig. 1: IDs [0,0], [0,1],
// [2,0], [2,1], [2,2] with D=2, B=3.
func paperTree(t *testing.T) (*Tree, Params, []ID) {
	t.Helper()
	p := Params{Digits: 2, Base: 3}
	ids := []ID{
		MustNew(p, []Digit{0, 0}),
		MustNew(p, []Digit{0, 1}),
		MustNew(p, []Digit{2, 0}),
		MustNew(p, []Digit{2, 1}),
		MustNew(p, []Digit{2, 2}),
	}
	tree, err := BuildTree(p, ids)
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	return tree, p, ids
}

func TestTreePaperExample(t *testing.T) {
	tree, p, ids := paperTree(t)
	if tree.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tree.Size())
	}
	// Level-1 nodes [0] and [2] exist; [1] does not.
	p0, _ := PrefixOf(p, []Digit{0})
	p1, _ := PrefixOf(p, []Digit{1})
	p2, _ := PrefixOf(p, []Digit{2})
	if !tree.HasNode(p0) || !tree.HasNode(p2) {
		t.Error("level-1 nodes [0] and [2] should exist")
	}
	if tree.HasNode(p1) {
		t.Error("node [1] should not exist")
	}
	if got := tree.SubtreeSize(p0); got != 2 {
		t.Errorf("SubtreeSize([0]) = %d, want 2", got)
	}
	if got := tree.SubtreeSize(p2); got != 3 {
		t.Errorf("SubtreeSize([2]) = %d, want 3", got)
	}
	if got := tree.ChildDigits(EmptyPrefix); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("root children = %v, want [0 2]", got)
	}
	// u1=[0,0]: members of its (0,2)-ID subtree are u3,u4,u5.
	members := tree.Members(SubtreeOf(ids[0], 0, 2))
	if len(members) != 3 {
		t.Fatalf("(0,2)-subtree of u1 has %d members, want 3", len(members))
	}
	// u3=[2,0]: its (1,1)-ID subtree holds u4=[2,1].
	members = tree.Members(SubtreeOf(ids[2], 1, 1))
	if len(members) != 1 || !members[0].Equal(ids[3]) {
		t.Errorf("(1,1)-subtree of u3 = %v, want [u4]", members)
	}
}

func TestTreeInsertRemove(t *testing.T) {
	tree, p, ids := paperTree(t)
	if err := tree.Insert(ids[0]); err == nil {
		t.Error("duplicate insert should fail")
	}
	absent := MustNew(p, []Digit{1, 1})
	if err := tree.Remove(absent); err == nil {
		t.Error("removing absent ID should fail")
	}
	// Removing [2,2] keeps node [2]; removing all of [2,*] prunes it.
	for _, id := range []ID{ids[4], ids[3]} {
		if err := tree.Remove(id); err != nil {
			t.Fatalf("Remove(%v): %v", id, err)
		}
	}
	p2, _ := PrefixOf(p, []Digit{2})
	if !tree.HasNode(p2) {
		t.Error("[2] should survive while [2,0] remains")
	}
	if err := tree.Remove(ids[2]); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if tree.HasNode(p2) {
		t.Error("[2] should be pruned when empty")
	}
	if tree.Size() != 2 {
		t.Errorf("Size = %d, want 2", tree.Size())
	}
	// Reinsert works after pruning.
	if err := tree.Insert(ids[2]); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if !tree.Contains(ids[2]) {
		t.Error("reinserted ID missing")
	}
}

func TestTreeWalk(t *testing.T) {
	tree, _, _ := paperTree(t)
	var count, leafCount int
	tree.Walk(func(p Prefix, size int) bool {
		count++
		if p.Len() == tree.Params().Digits {
			leafCount++
			if size != 1 {
				t.Errorf("leaf %v has size %d", p, size)
			}
		}
		return true
	})
	// Nodes: root, [0], [2], and 5 leaves = 8.
	if count != 8 {
		t.Errorf("walk visited %d nodes, want 8", count)
	}
	if leafCount != 5 {
		t.Errorf("walk visited %d leaves, want 5", leafCount)
	}
	if count != tree.NodeCount() {
		t.Errorf("NodeCount = %d, walk saw %d", tree.NodeCount(), count)
	}
	// Early termination.
	visits := 0
	tree.Walk(func(Prefix, int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stop walk visited %d, want 1", visits)
	}
}

// Property: after a random interleaving of inserts and removes, subtree
// sizes are consistent with a brute-force recount at every prefix.
func TestTreeRandomizedConsistency(t *testing.T) {
	p := Params{Digits: 3, Base: 4}
	rng := rand.New(rand.NewSource(42))
	tree := NewTree(p)
	live := make(map[string]ID)

	for step := 0; step < 2000; step++ {
		n := rng.Intn(p.Capacity())
		id, err := FromInt(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := live[id.Key()]; ok {
			if err := tree.Remove(id); err != nil {
				t.Fatalf("step %d Remove(%v): %v", step, id, err)
			}
			delete(live, id.Key())
		} else {
			if err := tree.Insert(id); err != nil {
				t.Fatalf("step %d Insert(%v): %v", step, id, err)
			}
			live[id.Key()] = id
		}
	}

	if tree.Size() != len(live) {
		t.Fatalf("Size = %d, want %d", tree.Size(), len(live))
	}
	// Brute-force count per prefix.
	counts := make(map[string]int)
	for _, id := range live {
		for l := 0; l <= p.Digits; l++ {
			counts[id.Prefix(l).Key()]++
		}
	}
	tree.Walk(func(pfx Prefix, size int) bool {
		if counts[pfx.Key()] != size {
			t.Errorf("subtree %v size %d, brute force %d", pfx, size, counts[pfx.Key()])
		}
		return true
	})
	for key, want := range counts {
		if got := tree.SubtreeSize(PrefixFromKey(key)); got != want {
			t.Errorf("SubtreeSize(%v) = %d, want %d", PrefixFromKey(key), got, want)
		}
	}
	// Members at root equals the live set.
	members := tree.Members(EmptyPrefix)
	if len(members) != len(live) {
		t.Fatalf("Members(root) = %d IDs, want %d", len(members), len(live))
	}
	for _, m := range members {
		if _, ok := live[m.Key()]; !ok {
			t.Errorf("Members returned dead ID %v", m)
		}
	}
}

// TestEachChildDigit: the allocation-free iterator agrees with
// ChildDigits on every node, in the same (increasing) order.
func TestEachChildDigit(t *testing.T) {
	params := Params{Digits: 3, Base: 4}
	var ids []ID
	for _, n := range []int{0, 5, 13, 21, 37, 55, 63} {
		id, err := FromInt(params, n)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	tree, err := BuildTree(params, ids)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(p Prefix, _ int) bool {
		var got []Digit
		tree.EachChildDigit(p, func(d Digit) { got = append(got, d) })
		want := tree.ChildDigits(p)
		if len(got) != len(want) {
			t.Fatalf("EachChildDigit(%v) yielded %v, ChildDigits %v", p, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("EachChildDigit(%v) yielded %v, ChildDigits %v", p, got, want)
			}
		}
		return true
	})
	// A node with no children (a leaf) and an absent node both yield
	// nothing.
	tree.EachChildDigit(ids[0].Prefix(params.Digits), func(d Digit) {
		t.Errorf("leaf yielded child digit %d", d)
	})
}
