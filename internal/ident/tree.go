package ident

import (
	"fmt"
	"sort"
)

// Tree is the ID tree of Definition 1: the trie of all current user IDs
// and their prefixes. The paper stresses that no single entity maintains
// the ID tree; it is "a conceptual structure to guide protocol design".
// The simulator nevertheless materialises it, because the key server's
// modified key tree must match its structure exactly and because tests
// verify the structural lemmas against it.
//
// Tree is not safe for concurrent mutation; the simulator drives it from a
// single event loop.
type Tree struct {
	params Params
	// nodes maps a present prefix key to the number of user IDs below it.
	// The empty prefix is present whenever the tree is non-empty.
	nodes map[string]int
	// children maps a present prefix key to the set of child digits that
	// exist at the next level.
	children map[string]map[Digit]struct{}
}

// NewTree returns an empty ID tree over the given ID space.
func NewTree(params Params) *Tree {
	return &Tree{
		params:   params,
		nodes:    make(map[string]int),
		children: make(map[string]map[Digit]struct{}),
	}
}

// BuildTree constructs the ID tree of a set of user IDs.
func BuildTree(params Params, ids []ID) (*Tree, error) {
	t := NewTree(params)
	for _, id := range ids {
		if err := t.Insert(id); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Params returns the ID-space parameters the tree was built with.
func (t *Tree) Params() Params { return t.params }

// Size returns the number of user IDs (leaves) in the tree.
func (t *Tree) Size() int { return t.nodes[""] }

// Contains reports whether the exact user ID is present.
func (t *Tree) Contains(id ID) bool {
	return t.nodes[id.Key()] > 0 && id.Len() == t.params.Digits
}

// Insert adds a user ID, creating any missing prefix nodes (the paper's
// join-time key tree growth mirrors this). Inserting a duplicate ID is an
// error: user IDs are unique by construction.
func (t *Tree) Insert(id ID) error {
	if id.Len() != t.params.Digits {
		return fmt.Errorf("ident: inserting ID %v with %d digits into D=%d tree", id, id.Len(), t.params.Digits)
	}
	if t.Contains(id) {
		return fmt.Errorf("ident: duplicate ID %v", id)
	}
	key := id.Key()
	for l := 0; l <= len(key); l++ {
		t.nodes[key[:l]]++
	}
	for l := 1; l <= len(key); l++ {
		parent := key[:l-1]
		set := t.children[parent]
		if set == nil {
			set = make(map[Digit]struct{})
			t.children[parent] = set
		}
		set[Digit(key[l-1])] = struct{}{}
	}
	return nil
}

// Remove deletes a user ID and prunes prefix nodes that no longer have
// descendants, exactly as the key server prunes k-nodes for leaving users.
func (t *Tree) Remove(id ID) error {
	if !t.Contains(id) {
		return fmt.Errorf("ident: removing absent ID %v", id)
	}
	key := id.Key()
	for l := len(key); l >= 0; l-- {
		pfx := key[:l]
		t.nodes[pfx]--
		if t.nodes[pfx] == 0 {
			delete(t.nodes, pfx)
			delete(t.children, pfx)
			if l > 0 {
				parent := key[:l-1]
				if set := t.children[parent]; set != nil {
					delete(set, Digit(key[l-1]))
				}
			}
		}
	}
	return nil
}

// HasNode reports whether the prefix exists as a node of the ID tree.
func (t *Tree) HasNode(p Prefix) bool { return t.nodes[p.Key()] > 0 }

// SubtreeSize returns the number of user IDs in the ID subtree rooted at
// the prefix (0 if the node does not exist).
func (t *Tree) SubtreeSize(p Prefix) int { return t.nodes[p.Key()] }

// ChildDigits returns the digits of the existing children of the prefix
// node, in increasing order.
func (t *Tree) ChildDigits(p Prefix) []Digit {
	set := t.children[p.Key()]
	out := make([]Digit, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// ChildCount returns the number of existing children of the prefix node
// (0 if the node does not exist) without allocating.
func (t *Tree) ChildCount(p Prefix) int { return len(t.children[p.Key()]) }

// EachChildDigit calls fn for every existing child digit of the prefix
// node in increasing order. Unlike ChildDigits it neither allocates nor
// sorts (it probes the child set digit by digit), so per-node tree
// walks can run allocation-free.
func (t *Tree) EachChildDigit(p Prefix, fn func(Digit)) {
	set := t.children[p.Key()]
	for d := 0; d < t.params.Base; d++ {
		if _, ok := set[d]; ok {
			fn(d)
		}
	}
}

// Members returns all user IDs in the subtree rooted at the prefix, in
// increasing ID order. Members(EmptyPrefix) lists the whole group.
func (t *Tree) Members(p Prefix) []ID {
	var out []ID
	t.walkMembers(p, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func (t *Tree) walkMembers(p Prefix, out *[]ID) {
	if t.nodes[p.Key()] == 0 {
		return
	}
	if p.Len() == t.params.Digits {
		*out = append(*out, ID{digits: p.digits})
		return
	}
	for d := range t.children[p.Key()] {
		t.walkMembers(p.Child(d), out)
	}
}

// SubtreeOf returns the root prefix of u's (i,j)-ID subtree per
// Definition 2: the level-(i+1) subtree whose root is u.ID[0:i-1] extended
// with digit j. The subtree may be empty (not present in the tree); use
// SubtreeSize to check.
func SubtreeOf(u ID, i int, j Digit) Prefix {
	return u.Prefix(i).Child(j)
}

// Walk visits every node of the tree in pre-order, calling fn with the
// node's prefix and its subtree size. Returning false stops the walk.
func (t *Tree) Walk(fn func(p Prefix, size int) bool) {
	var rec func(p Prefix) bool
	rec = func(p Prefix) bool {
		size := t.nodes[p.Key()]
		if size == 0 {
			return true
		}
		if !fn(p, size) {
			return false
		}
		for _, d := range t.ChildDigits(p) {
			if !rec(p.Child(d)) {
				return false
			}
		}
		return true
	}
	rec(EmptyPrefix)
}

// NodeCount returns the total number of nodes (prefixes, including the
// root and the leaves) currently in the tree.
func (t *Tree) NodeCount() int { return len(t.nodes) }
