// Package rekeyd runs the paper's rekey protocol over a real
// transport: one key server plus many member nodes exchanging
// internal/wire frames through internal/transport instead of eventsim
// hops. It is the daemon behind `rekeysim -daemon` and the harness the
// chaos fault ladder uses to prove the multicast→unicast→resync
// degradation ladder outside the simulator.
//
// Protocol per rekey interval:
//
//  1. The server FORWARDs the batch rekey message over the T-mesh:
//     level-1 copies to its (0,j)-primary neighbors, each split to the
//     receiver's level-1 subtree (TypeRekey frames). Members forward
//     for rows [level, D-1], splitting with the shared compiled index,
//     and apply their own slice.
//  2. Every member that installs the interval's group key acks
//     (TypeAck). Acks are idempotent; duplicates from rungs racing
//     each other are harmless.
//  3. After Config.Timeout the server climbs the recovery ladder per
//     unacked member: RetryBudget unicast attempts (TypeRekey at
//     forward level D — terminal, never forwarded) spaced by the
//     min(RetryBase<<(n-1), RetryMax) backoff, then ResyncBudget full
//     path-key resyncs (TypeSync) spaced by RetryMax. A member still
//     silent after that is reported dead-in-flight, mirroring
//     recovery.LadderResult semantics.
//
// Nodes share one process (the daemon runs "many in-process user
// nodes over real loopback sockets"), so the overlay Directory and the
// per-interval split index are shared read-only state under Shared;
// everything that crosses nodes as *protocol* crosses the transport
// as bytes.
package rekeyd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keycrypt"
	"tmesh/internal/keytree"
	"tmesh/internal/obs"
	"tmesh/internal/overlay"
	"tmesh/internal/recovery"
	"tmesh/internal/split"
	"tmesh/internal/transport"
	"tmesh/internal/wire"
)

// PeerOf maps a member ID to its transport routing key.
func PeerOf(id ident.ID) transport.PeerID { return transport.PeerID(id.Key()) }

// Config tunes the server's delivery ladder.
type Config struct {
	Params ident.Params
	// Timeout is the post-multicast ack wait before the ladder starts.
	Timeout time.Duration
	// RetryBase/RetryMax/RetryBudget shape the unicast rung exactly
	// like recovery.LadderConfig.
	RetryBase, RetryMax time.Duration
	RetryBudget         int
	// ResyncBudget bounds the resync rung's retransmissions (spaced by
	// RetryMax); the ladder must terminate even against a peer that
	// never comes back — it surfaces as dead-in-flight instead of a
	// hang.
	ResyncBudget int
	// SplitParallelism sizes the compiled-index build fan-out.
	SplitParallelism int
	// Obs receives daemon counters (nil-safe).
	Obs *obs.Registry
}

func (c *Config) fill() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = 4 * c.RetryBase
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = 3
	}
	if c.ResyncBudget < 1 {
		c.ResyncBudget = 5
	}
	if c.SplitParallelism < 1 {
		c.SplitParallelism = 1
	}
	return nil
}

// backoff is the ladder's unicast spacing: min(RetryBase<<(n-1),
// RetryMax), guarded against shift overflow like recovery's.
func (c *Config) backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := c.RetryBase
	if shift := attempt - 1; shift < 63 {
		d = c.RetryBase << shift
	} else {
		d = c.RetryMax
	}
	if d > c.RetryMax || d <= 0 {
		d = c.RetryMax
	}
	return d
}

// Shared is the in-process state nodes read and the driver writes: the
// overlay directory (not concurrency-safe on its own) behind an
// RWMutex, the liveness oracle the FORWARD primaries consult, and the
// per-interval compiled split index. The index is derived, read-only
// data — split monotonicity makes sharing the server-built index at
// every forwarding node byte-identical to re-splitting per hop.
type Shared struct {
	mu    sync.RWMutex
	dir   *overlay.Directory
	alive func(ident.ID) bool

	idxMu   sync.RWMutex
	indexes map[uint64]*split.Index
}

// NewShared wraps a directory for concurrent node access.
func NewShared(dir *overlay.Directory) *Shared {
	return &Shared{dir: dir, indexes: make(map[uint64]*split.Index)}
}

// SetAlive installs the liveness oracle used when picking forwarding
// primaries (the driver's view of killed peers). May be nil.
func (s *Shared) SetAlive(f func(ident.ID) bool) {
	s.mu.Lock()
	s.alive = f
	s.mu.Unlock()
}

// Read runs f holding the directory read lock.
func (s *Shared) Read(f func(dir *overlay.Directory)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f(s.dir)
}

// Write runs f holding the directory write lock (driver-side churn).
func (s *Shared) Write(f func(dir *overlay.Directory)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s.dir)
}

// PutIndex registers the compiled split index for an interval and
// drops indexes more than two intervals old.
func (s *Shared) PutIndex(interval uint64, idx *split.Index) {
	s.idxMu.Lock()
	s.indexes[interval] = idx
	for k := range s.indexes {
		if k+2 < interval {
			delete(s.indexes, k)
		}
	}
	s.idxMu.Unlock()
}

// Index returns the interval's compiled index, nil if unknown.
func (s *Shared) Index(interval uint64) *split.Index {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.indexes[interval]
}

// splitFor filters encs to a subtree through the compiled index when
// one exists, falling back to the legacy linear filter.
func (s *Shared) splitFor(interval uint64, encs []keycrypt.Encryption, subtree ident.Prefix) []keycrypt.Encryption {
	if idx := s.Index(interval); idx != nil {
		return idx.Split(encs, subtree)
	}
	return split.Filter(encs, subtree)
}

// Member is one user node: a keyring, a transport endpoint, and the
// FORWARD duty for its rows of the T-mesh.
type Member struct {
	id     ident.ID
	params ident.Params
	tr     transport.Transport
	sh     *Shared

	mu      sync.Mutex
	kr      *keytree.Keyring
	applied uint64
	copies  map[uint64]int // rekey copies received, per interval

	applies, forwards, reacks, applyErrs, resyncs *obs.Counter
}

// NewMember wraps a transport endpoint as a member node holding the
// given keyring (its join-time path keys). appliedInterval is the
// interval whose keys the keyring already reflects: a node joining in
// interval i receives interval-i keys out of band (the paper's
// reliable join unicast), so it acks interval i without applying.
func NewMember(id ident.ID, params ident.Params, tr transport.Transport, sh *Shared, kr *keytree.Keyring, appliedInterval uint64, reg *obs.Registry) *Member {
	m := &Member{
		id: id, params: params, tr: tr, sh: sh,
		kr: kr, applied: appliedInterval,
		copies:    make(map[uint64]int),
		applies:   reg.Counter("rekeyd_member_applies"),
		forwards:  reg.Counter("rekeyd_member_forwards"),
		reacks:    reg.Counter("rekeyd_member_reacks"),
		applyErrs: reg.Counter("rekeyd_member_apply_errors"),
		resyncs:   reg.Counter("rekeyd_member_resyncs"),
	}
	tr.SetHandler(m.handle)
	return m
}

// ID returns the member's tree ID.
func (m *Member) ID() ident.ID { return m.id }

// GroupKey returns the member's current group key.
func (m *Member) GroupKey() (keycrypt.Key, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kr.GroupKey()
}

// Applied returns the newest interval whose keys are installed.
func (m *Member) Applied() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applied
}

func (m *Member) handle(from transport.PeerID, frame []byte) {
	if len(frame) == 0 {
		return
	}
	switch wire.MsgType(frame[0]) {
	case wire.TypeRekey:
		msg, level, err := wire.UnmarshalRekey(frame)
		if err != nil {
			return
		}
		m.onRekey(msg, level)
	case wire.TypeSync:
		interval, path, err := wire.UnmarshalSync(frame)
		if err != nil {
			return
		}
		m.onSync(interval, path)
	}
}

// CopiesOf reports how many rekey copies arrived for an interval —
// the socket-side evidence for Theorem 1's exactly-one-copy claim in
// fault-free intervals (recovery rungs legitimately add copies).
func (m *Member) CopiesOf(interval uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.copies[interval]
}

func (m *Member) onRekey(msg *keytree.Message, level int) {
	if level < m.params.Digits {
		m.forward(msg, level)
	}
	m.mu.Lock()
	m.copies[msg.Interval]++
	for k := range m.copies {
		if k+4 < msg.Interval {
			delete(m.copies, k)
		}
	}
	if msg.Interval <= m.applied {
		applied := m.applied
		m.mu.Unlock()
		// Duplicate (Theorem 1's fault-tolerant redundancy, or a
		// ladder rung racing a slow ack): re-ack, don't re-apply.
		m.reacks.Inc()
		m.ack(applied)
		return
	}
	if _, err := m.kr.Apply(msg); err != nil {
		// A missing or stale KEK: this keyring skipped an interval
		// the message assumes. No ack — the server's ladder will
		// reach the resync rung and rebuild the path.
		m.mu.Unlock()
		m.applyErrs.Inc()
		return
	}
	m.applied = msg.Interval
	m.mu.Unlock()
	m.applies.Inc()
	m.ack(msg.Interval)
}

func (m *Member) onSync(interval uint64, path []keytree.PathKey) {
	m.mu.Lock()
	if interval <= m.applied {
		applied := m.applied
		m.mu.Unlock()
		m.reacks.Inc()
		m.ack(applied)
		return
	}
	kr, err := keytree.NewKeyring(m.params, m.id, path)
	if err != nil {
		m.mu.Unlock()
		m.applyErrs.Inc()
		return
	}
	m.kr = kr
	m.applied = interval
	m.mu.Unlock()
	m.resyncs.Inc()
	m.ack(interval)
}

func (m *Member) ack(interval uint64) {
	m.tr.Send(transport.ServerID, wire.MarshalAck(interval, m.id))
}

// forward implements the member half of FORWARD (Section 3.2): for
// each row s in [level, D-1] send one level-(s+1) copy to the (s,j)-
// primary of every non-diagonal column, split to that neighbor's
// (s+1)-digit subtree.
func (m *Member) forward(msg *keytree.Message, level int) {
	type hop struct {
		to      transport.PeerID
		subtree ident.Prefix
		level   int
	}
	var hops []hop
	m.sh.Read(func(dir *overlay.Directory) {
		table, ok := dir.TableOf(m.id)
		if !ok {
			return // evicted mid-interval; nothing to forward from
		}
		alive := m.sh.alive
		for s := level; s < m.params.Digits; s++ {
			own := m.id.Digit(s)
			for j := 0; j < m.params.Base; j++ {
				if ident.Digit(j) == own {
					continue // diagonal: the owner's own subtree
				}
				next, ok := table.Entry(s, ident.Digit(j)).Primary(alive)
				if !ok {
					continue
				}
				hops = append(hops, hop{
					to:      PeerOf(next.ID),
					subtree: next.ID.Prefix(s + 1),
					level:   s + 1,
				})
			}
		}
	})
	for _, h := range hops {
		encs := m.sh.splitFor(msg.Interval, msg.Encryptions, h.subtree)
		if len(encs) == 0 {
			continue // REKEY-MESSAGE-SPLIT: nothing downstream needs it
		}
		buf, err := wire.MarshalRekey(&keytree.Message{Interval: msg.Interval, Encryptions: encs}, h.level)
		if err != nil {
			continue
		}
		if m.tr.Send(h.to, buf) == nil {
			m.forwards.Inc()
		}
	}
}

// Close releases the member's transport endpoint.
func (m *Member) Close() error { return m.tr.Close() }

// Result is one interval's delivery outcome, the socket analogue of
// recovery.LadderResult.
type Result struct {
	Interval uint64
	// Expected is the number of members the server waited on.
	Expected int
	// RungOf records, per member key, the highest ladder rung in
	// flight when its ack arrived.
	RungOf map[string]recovery.Rung
	// DeadInFlight lists members whose ladder ran dry unacked.
	DeadInFlight []ident.ID
	// UnicastAttempts and SyncAttempts count ladder sends.
	UnicastAttempts, SyncAttempts int
	// MaxBackoff is the longest unicast spacing any member's chain
	// reached.
	MaxBackoff time.Duration
}

// Acked reports whether every expected member acked.
func (r *Result) Acked() bool { return len(r.RungOf) == r.Expected }

// Rungs tallies acks per rung.
func (r *Result) Rungs() map[recovery.Rung]int {
	out := make(map[recovery.Rung]int, 3)
	for _, rung := range r.RungOf {
		out[rung]++
	}
	return out
}

// Server is the key-server node: it owns the ack ledger and drives the
// FORWARD start plus the per-member recovery ladder.
type Server struct {
	cfg  Config
	tr   transport.Transport
	sh   *Shared
	tree *keytree.Tree

	ackMu   sync.Mutex
	acked   map[uint64]map[string]recovery.Rung // interval -> member -> rung at ack
	rungNow map[uint64]map[string]recovery.Rung // rung currently in flight
	waiters map[uint64]map[string][]chan struct{}

	acks, unicasts, syncsSent, dead *obs.Counter
}

// NewServer wraps the server transport endpoint. The tree stays owned
// by the driver (Mark/Regenerate between intervals); Distribute only
// reads it (PathKeys for resyncs), so the driver must not mutate the
// tree while a Distribute is in flight.
func NewServer(cfg Config, tr transport.Transport, sh *Shared, tree *keytree.Tree) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		tr:        tr,
		sh:        sh,
		tree:      tree,
		acked:     make(map[uint64]map[string]recovery.Rung),
		rungNow:   make(map[uint64]map[string]recovery.Rung),
		waiters:   make(map[uint64]map[string][]chan struct{}),
		acks:      cfg.Obs.Counter("rekeyd_server_acks"),
		unicasts:  cfg.Obs.Counter("rekeyd_server_unicasts"),
		syncsSent: cfg.Obs.Counter("rekeyd_server_resyncs"),
		dead:      cfg.Obs.Counter("rekeyd_server_dead_in_flight"),
	}
	tr.SetHandler(s.handle)
	return s, nil
}

func (s *Server) handle(from transport.PeerID, frame []byte) {
	if len(frame) == 0 || wire.MsgType(frame[0]) != wire.TypeAck {
		return
	}
	interval, id, err := wire.UnmarshalAck(frame, s.cfg.Params)
	if err != nil {
		return
	}
	key := id.Key()
	s.ackMu.Lock()
	ledger, tracked := s.acked[interval]
	if !tracked {
		s.ackMu.Unlock()
		return // an interval Distribute never opened (stale re-ack)
	}
	if _, dup := ledger[key]; dup {
		s.ackMu.Unlock()
		return
	}
	rung := recovery.ByMulticast
	if r, ok := s.rungNow[interval][key]; ok {
		rung = r
	}
	ledger[key] = rung
	chans := s.waiters[interval][key]
	delete(s.waiters[interval], key)
	s.ackMu.Unlock()
	s.acks.Inc()
	for _, ch := range chans {
		close(ch)
	}
}

// ackChan returns a channel closed when the member acks the interval
// (closed immediately if it already has).
func (s *Server) ackChan(interval uint64, key string) <-chan struct{} {
	ch := make(chan struct{})
	s.ackMu.Lock()
	if _, ok := s.acked[interval][key]; ok {
		s.ackMu.Unlock()
		close(ch)
		return ch
	}
	if s.waiters[interval] == nil {
		s.waiters[interval] = make(map[string][]chan struct{})
	}
	s.waiters[interval][key] = append(s.waiters[interval][key], ch)
	s.ackMu.Unlock()
	return ch
}

func (s *Server) hasAcked(interval uint64, key string) bool {
	s.ackMu.Lock()
	defer s.ackMu.Unlock()
	_, ok := s.acked[interval][key]
	return ok
}

func (s *Server) setRung(interval uint64, key string, r recovery.Rung) {
	s.ackMu.Lock()
	if s.rungNow[interval] == nil {
		s.rungNow[interval] = make(map[string]recovery.Rung)
	}
	s.rungNow[interval][key] = r
	s.ackMu.Unlock()
}

// Distribute delivers one interval's rekey message to every member in
// expected, climbing the ladder for stragglers. It blocks until every
// member acked or ran its ladder dry, so it always terminates:
// worst-case per member is Timeout + Σ backoff(RetryBudget) +
// ResyncBudget·RetryMax.
func (s *Server) Distribute(msg *keytree.Message, expected []ident.ID) (*Result, error) {
	if msg == nil {
		return nil, fmt.Errorf("rekeyd: nil rekey message")
	}
	// Compile the split index once, server-side; every forwarding node
	// shares it through Shared (monotonicity makes that byte-identical
	// to per-hop re-splitting).
	var idx *split.Index
	s.sh.Read(func(dir *overlay.Directory) {
		idx = split.NewIndex(dir.Tree(), msg.Encryptions, s.cfg.SplitParallelism)
	})
	s.sh.PutIndex(msg.Interval, idx)

	s.ackMu.Lock()
	if _, dup := s.acked[msg.Interval]; dup {
		s.ackMu.Unlock()
		return nil, fmt.Errorf("rekeyd: interval %d already distributed", msg.Interval)
	}
	s.acked[msg.Interval] = make(map[string]recovery.Rung, len(expected))
	s.ackMu.Unlock()

	// FORWARD start: one level-1 copy per (0,j)-primary, split to the
	// receiver's level-1 subtree.
	type hop struct {
		to      transport.PeerID
		subtree ident.Prefix
	}
	var hops []hop
	s.sh.Read(func(dir *overlay.Directory) {
		alive := s.sh.alive
		for j := 0; j < s.cfg.Params.Base; j++ {
			next, ok := dir.Server().Entry(ident.Digit(j)).Primary(alive)
			if !ok {
				continue
			}
			hops = append(hops, hop{to: PeerOf(next.ID), subtree: next.ID.Prefix(1)})
		}
	})
	for _, h := range hops {
		encs := idx.Split(msg.Encryptions, h.subtree)
		if len(encs) == 0 {
			continue
		}
		buf, err := wire.MarshalRekey(&keytree.Message{Interval: msg.Interval, Encryptions: encs}, 1)
		if err != nil {
			return nil, err
		}
		s.tr.Send(h.to, buf)
	}

	// Wait out the multicast, then ladder the stragglers.
	res := &Result{Interval: msg.Interval, Expected: len(expected)}
	s.waitAll(msg.Interval, expected, s.cfg.Timeout)

	var wg sync.WaitGroup
	var resMu sync.Mutex
	for _, id := range expected {
		if s.hasAcked(msg.Interval, id.Key()) {
			continue
		}
		wg.Add(1)
		go func(id ident.ID) {
			defer wg.Done()
			s.ladder(msg, id, res, &resMu)
		}(id)
	}
	wg.Wait()

	s.ackMu.Lock()
	res.RungOf = make(map[string]recovery.Rung, len(s.acked[msg.Interval]))
	for k, r := range s.acked[msg.Interval] {
		res.RungOf[k] = r
	}
	// Release the waiter bookkeeping for this interval.
	delete(s.waiters, msg.Interval)
	delete(s.rungNow, msg.Interval)
	s.ackMu.Unlock()
	sort.Slice(res.DeadInFlight, func(i, j int) bool {
		return res.DeadInFlight[i].Compare(res.DeadInFlight[j]) < 0
	})
	return res, nil
}

// waitAll blocks until every expected member acked or the timeout
// elapsed.
func (s *Server) waitAll(interval uint64, expected []ident.ID, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for _, id := range expected {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		select {
		case <-s.ackChan(interval, id.Key()):
		case <-time.After(remaining):
			return
		}
	}
}

// ladder climbs unicast → resync for one silent member.
func (s *Server) ladder(msg *keytree.Message, id ident.ID, res *Result, resMu *sync.Mutex) {
	key := id.Key()
	// Unicast rung: the member's own slice at terminal forward level D
	// (never forwarded further), retried on the capped exponential
	// schedule.
	slice := recovery.NeededBy(msg, id)
	unicast, err := wire.MarshalRekey(&keytree.Message{Interval: msg.Interval, Encryptions: slice}, s.cfg.Params.Digits)
	if err != nil {
		unicast = nil
	}
	for n := 1; n <= s.cfg.RetryBudget && unicast != nil; n++ {
		s.setRung(msg.Interval, key, recovery.ByUnicast)
		s.tr.Send(PeerOf(id), unicast)
		s.unicasts.Inc()
		d := s.cfg.backoff(n)
		resMu.Lock()
		res.UnicastAttempts++
		if d > res.MaxBackoff {
			res.MaxBackoff = d
		}
		resMu.Unlock()
		select {
		case <-s.ackChan(msg.Interval, key):
			return
		case <-time.After(d):
		}
	}
	// Resync rung: rebuild the member's whole path. PathKeys is a
	// tree read; the driver contract forbids concurrent Mark/
	// Regenerate during Distribute.
	for n := 1; n <= s.cfg.ResyncBudget; n++ {
		path, err := s.tree.PathKeys(id)
		if err != nil {
			break // left/evicted under the ladder: dead in flight
		}
		buf, err := wire.MarshalSync(msg.Interval, path)
		if err != nil {
			break
		}
		s.setRung(msg.Interval, key, recovery.ByResync)
		s.tr.Send(PeerOf(id), buf)
		s.syncsSent.Inc()
		resMu.Lock()
		res.SyncAttempts++
		resMu.Unlock()
		select {
		case <-s.ackChan(msg.Interval, key):
			return
		case <-time.After(s.cfg.RetryMax):
		}
	}
	s.dead.Inc()
	resMu.Lock()
	res.DeadInFlight = append(res.DeadInFlight, id)
	resMu.Unlock()
}

// Close releases the server's transport endpoint.
func (s *Server) Close() error { return s.tr.Close() }
