package rekeyd

import (
	"runtime"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/recovery"
	"tmesh/internal/transport"
)

func testConfig(kind string, members int) WorldConfig {
	return WorldConfig{
		Params:         ident.Params{Digits: 3, Base: 4},
		K:              2,
		Seed:           7,
		InitialMembers: members,
		Transport:      kind,
		Ladder: Config{
			Timeout:      150 * time.Millisecond,
			RetryBase:    50 * time.Millisecond,
			RetryMax:     200 * time.Millisecond,
			RetryBudget:  3,
			ResyncBudget: 5,
		},
	}
}

// guardGoroutines mirrors the transport test helper: every node,
// pump, and ladder goroutine must be gone after World.Close.
func guardGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// assertConverged checks the interval's contract: every surviving
// member acked, holds the server's group key byte-for-byte, and is at
// the tree's interval.
func assertConverged(t *testing.T, w *World, res *Result) {
	t.Helper()
	if len(res.DeadInFlight) != 0 {
		t.Fatalf("interval %d: dead in flight %v", res.Interval, res.DeadInFlight)
	}
	if !res.Acked() {
		t.Fatalf("interval %d: %d/%d acked", res.Interval, len(res.RungOf), res.Expected)
	}
	want, ok := w.Tree().GroupKey()
	if !ok {
		t.Fatal("tree has no group key")
	}
	for _, m := range w.Members() {
		got, ok := m.GroupKey()
		if !ok || !got.Equal(want) {
			t.Fatalf("interval %d: member %v group key mismatch (has key: %v)", res.Interval, m.ID(), ok)
		}
		if m.Applied() != w.Tree().Interval() {
			t.Fatalf("interval %d: member %v applied %d, tree at %d", res.Interval, m.ID(), m.Applied(), w.Tree().Interval())
		}
	}
}

// TestWorldConverges runs several churning intervals on each transport
// kind and requires full convergence with real keyrings: the group key
// every member derives by unwrapping its slices must equal the
// server's, byte for byte.
func TestWorldConverges(t *testing.T) {
	for _, kind := range []string{"loopback", "udp", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			n := 16
			if kind == "tcp" {
				n = 8 // full-mesh eager dialing: keep the link count sane
			}
			check := guardGoroutines(t)
			w, err := NewWorld(testConfig(kind, n))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := w.Join(); err != nil {
					t.Fatal(err)
				}
				if i > 0 {
					if err := w.Leave(w.Members()[0].ID()); err != nil {
						t.Fatal(err)
					}
				}
				res, err := w.Rekey()
				if err != nil {
					t.Fatal(err)
				}
				assertConverged(t, w, res)
			}
			w.Close()
			check()
		})
	}
}

// TestKillRestoreMidInterval is the acceptance scenario from the
// issue: peers are killed before the rekey multicast and restored
// mid-interval, and every surviving member must still end the interval
// with the group key — the ladder's unicast/resync rungs carry the
// restored peers home.
func TestKillRestoreMidInterval(t *testing.T) {
	for _, kind := range []string{"loopback", "udp"} {
		t.Run(kind, func(t *testing.T) {
			check := guardGoroutines(t)
			w, err := NewWorld(testConfig(kind, 16))
			if err != nil {
				t.Fatal(err)
			}
			members := w.Members()
			victims := []ident.ID{members[2].ID(), members[9].ID()}
			for _, v := range victims {
				w.Kill(v)
			}
			// Restore mid-ladder: after the multicast timeout but well
			// inside the resync budget.
			restored := make(chan struct{})
			go func() {
				time.Sleep(300 * time.Millisecond)
				for _, v := range victims {
					w.Restore(v)
				}
				close(restored)
			}()
			if _, err := w.Join(); err != nil {
				t.Fatal(err)
			}
			res, err := w.Rekey()
			if err != nil {
				t.Fatal(err)
			}
			<-restored
			assertConverged(t, w, res)
			// The victims cannot have been reached by plain multicast.
			rungs := res.Rungs()
			if rungs[recovery.ByUnicast]+rungs[recovery.ByResync] < 2 {
				t.Fatalf("killed peers converged without the ladder: %v", rungs)
			}
			w.Close()
			check()
		})
	}
}

// TestCrashEviction: a crashed (permanently killed) peer is evicted at
// the next interval, excluded from the expected set, and the overlay
// stays k-consistent for the survivors.
func TestCrashEviction(t *testing.T) {
	check := guardGoroutines(t)
	w, err := NewWorld(testConfig("loopback", 16))
	if err != nil {
		t.Fatal(err)
	}
	victim := w.Members()[5].ID()
	if err := w.Crash(victim); err != nil {
		t.Fatal(err)
	}
	res, err := w.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	if _, stillThere := w.Member(victim); stillThere {
		t.Fatal("crashed member still present after rekey")
	}
	for k := range res.RungOf {
		if k == victim.Key() {
			t.Fatal("crashed member in the expected/acked set")
		}
	}
	assertConverged(t, w, res)
	var consistency error
	w.Shared().Read(func(dir *overlay.Directory) { consistency = dir.CheckConsistency() })
	if consistency != nil {
		t.Fatalf("overlay inconsistent after eviction: %v", consistency)
	}
	w.Close()
	check()
}

// TestStalledPeerBoundsInterval: a member that keeps its transport
// alive but never acks (protocol-level stall — the byte-level write
// deadline twin lives in transport's TestTCPStalledPeerCannotWedge)
// cannot wedge the interval. Distribute terminates within the ladder
// budget, reports the stalled peer dead-in-flight, and every other
// member converges.
func TestStalledPeerBoundsInterval(t *testing.T) {
	check := guardGoroutines(t)
	cfg := testConfig("tcp", 8)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := w.Members()[3]
	// The stall: frames are read off the socket and dropped on the
	// floor. The node stays connected; it just never answers.
	victim.tr.SetHandler(func(transport.PeerID, []byte) {})

	if _, err := w.Join(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := w.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Ladder budget: Timeout + Σ min(Base<<(n-1), Max) + Resync·Max,
	// with scheduling slack.
	l := cfg.Ladder
	budget := l.Timeout + (50+100+200)*time.Millisecond + time.Duration(l.ResyncBudget)*l.RetryMax + 5*time.Second
	if elapsed > budget {
		t.Fatalf("Distribute took %v, budget %v — stalled peer wedged the interval", elapsed, budget)
	}
	if len(res.DeadInFlight) != 1 || !res.DeadInFlight[0].Equal(victim.ID()) {
		t.Fatalf("DeadInFlight = %v, want exactly the stalled %v", res.DeadInFlight, victim.ID())
	}
	if res.MaxBackoff != l.RetryMax {
		t.Fatalf("MaxBackoff = %v, want the saturated %v", res.MaxBackoff, l.RetryMax)
	}
	want, _ := w.Tree().GroupKey()
	for _, m := range w.Members() {
		if m.ID().Equal(victim.ID()) {
			continue
		}
		if got, ok := m.GroupKey(); !ok || !got.Equal(want) {
			t.Fatalf("member %v did not converge while %v stalled", m.ID(), victim.ID())
		}
	}
	w.Close()
	check()
}

// TestLadderBackoffSchedule pins the daemon ladder's spacing to the
// same min(RetryBase<<(n-1), RetryMax) shape the simulator ladder and
// the transport redial loop use, including the shift-overflow guard —
// three layers, one schedule, no compounding surprises.
func TestLadderBackoffSchedule(t *testing.T) {
	c := Config{Params: ident.Params{Digits: 2, Base: 4}, RetryBase: 50 * time.Millisecond, RetryMax: 400 * time.Millisecond}
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{50, 100, 200, 400, 400}
	for i, ms := range want {
		if got := c.backoff(i + 1); got != ms*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, ms*time.Millisecond)
		}
	}
	if got := c.backoff(500); got != c.RetryMax {
		t.Fatalf("backoff(500) = %v, want RetryMax (overflow guard)", got)
	}
}
