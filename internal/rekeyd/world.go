package rekeyd

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/keytree"
	"tmesh/internal/obs"
	"tmesh/internal/overlay"
	"tmesh/internal/transport"
	"tmesh/internal/vnet"
)

// WorldConfig assembles a full daemon world: one key server plus many
// in-process member nodes over a chosen transport kind.
type WorldConfig struct {
	Params ident.Params
	K      int
	Seed   int64
	// InitialMembers joins before the first interval.
	InitialMembers int
	// Transport picks the fabric: "loopback", "udp", or "tcp".
	Transport string
	// Listen is the bind address for socket transports (udp, tcp).
	// Every node binds its own socket, so the port should be 0
	// (ephemeral). Empty means 127.0.0.1:0.
	Listen string
	// Ladder tunes the server's delivery ladder (Params is overridden
	// from this config).
	Ladder Config
	// Queue bounds every endpoint's send queue; 0 means the transport
	// default.
	Queue int
	// HostBudget is the extra host headroom for joins beyond the
	// initial membership; 0 means 256.
	HostBudget int
	// RekeyParallelism sizes Regenerate's fan-out; 0 means 4.
	RekeyParallelism int
	// Topology shapes the GT-ITM graph behind the RTT-ordered neighbor
	// tables. The zero value picks a small soak topology.
	Topology vnet.GTITMConfig
	// Obs receives node and ladder counters (nil-safe).
	Obs *obs.Registry
}

func (c *WorldConfig) fill() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.K < 1 {
		c.K = 3
	}
	if c.InitialMembers < 1 {
		return fmt.Errorf("rekeyd: need at least one initial member")
	}
	switch c.Transport {
	case "loopback", "udp", "tcp":
	case "":
		c.Transport = "loopback"
	default:
		return fmt.Errorf("rekeyd: unknown transport %q (want loopback, udp, or tcp)", c.Transport)
	}
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.HostBudget <= 0 {
		c.HostBudget = 256
	}
	if c.RekeyParallelism <= 0 {
		c.RekeyParallelism = 4
	}
	if c.Topology.TotalRouters == 0 {
		c.Topology = vnet.GTITMConfig{
			TransitDomains:   2,
			TransitPerDomain: 2,
			StubsPerTransit:  2,
			TotalRouters:     120,
			TotalLinks:       300,
			AccessDelayMin:   time.Millisecond,
			AccessDelayMax:   3 * time.Millisecond,
		}
	}
	c.Ladder.Params = c.Params
	c.Ladder.Obs = c.Obs
	return nil
}

// World owns a running daemon: the shared directory and key tree, the
// server node, every member node, and the fault plan threaded through
// all their transports. The driver methods (Join, Leave, Crash, Kill,
// Restore, Rekey) are single-goroutine: call them from one place while
// the nodes churn concurrently underneath.
type World struct {
	cfg  WorldConfig
	sh   *Shared
	tree *keytree.Tree
	srv  *Server
	sw   *transport.Switch
	plan *transport.FaultPlan

	members map[string]*Member
	addrs   map[string]string // member key -> locator

	killMu sync.Mutex
	killed map[string]bool // temporarily killed (fault plan)

	pendingJoins  []overlay.Record
	pendingLeaves []ident.ID
	pendingEvicts []ident.ID

	freeHosts []vnet.HostID
	idRNG     *rand.Rand
	joinSeq   int64
}

// NewWorld builds the topology, directory, tree, server, and the
// initial membership, then runs interval 1 so every node starts with
// installed keys.
func NewWorld(cfg WorldConfig) (*World, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	totalHosts := 1 + cfg.InitialMembers + cfg.HostBudget
	top, err := vnet.NewGTITM(cfg.Topology, totalHosts, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dir, err := overlay.NewDirectory(cfg.Params, cfg.K, top, 0)
	if err != nil {
		return nil, err
	}
	tree, err := keytree.New(cfg.Params, []byte(fmt.Sprintf("rekeyd-%d", cfg.Seed)), keytree.Opts{RealCrypto: true, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:     cfg,
		sh:      NewShared(dir),
		tree:    tree,
		sw:      transport.NewSwitch(),
		plan:    transport.NewFaultPlan(cfg.Seed),
		members: make(map[string]*Member),
		addrs:   make(map[string]string),
		killed:  make(map[string]bool),
		idRNG:   rand.New(rand.NewSource(cfg.Seed ^ 0x696473)), // "ids"
	}
	for h := 1; h < totalHosts; h++ {
		w.freeHosts = append(w.freeHosts, vnet.HostID(h))
	}
	w.sh.SetAlive(func(id ident.ID) bool {
		return !w.plan.Killed(PeerOf(id))
	})

	srvTr, err := w.newEndpoint(transport.ServerID)
	if err != nil {
		return nil, err
	}
	srv, err := NewServer(cfg.Ladder, srvTr, w.sh, tree)
	if err != nil {
		srvTr.Close()
		return nil, err
	}
	w.srv = srv
	w.addrs[string(transport.ServerID)] = srvTr.Addr()

	for i := 0; i < cfg.InitialMembers; i++ {
		if _, err := w.Join(); err != nil {
			w.Close()
			return nil, err
		}
	}
	if _, err := w.Rekey(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// newEndpoint builds one transport endpoint of the configured kind,
// wrapped in the shared fault plan.
func (w *World) newEndpoint(id transport.PeerID) (transport.Transport, error) {
	cfg := transport.Config{ID: id, Queue: w.cfg.Queue, Obs: w.cfg.Obs, Faults: w.plan}
	var inner transport.Transport
	var err error
	switch w.cfg.Transport {
	case "loopback":
		inner, err = transport.NewLoopback(w.sw, cfg)
	case "udp":
		inner, err = transport.NewUDP(w.cfg.Listen, cfg)
	case "tcp":
		inner, err = transport.NewTCP(w.cfg.Listen, cfg)
	}
	if err != nil {
		return nil, err
	}
	return transport.WithFaults(inner, w.plan, w.cfg.Obs), nil
}

// FaultPlan exposes the shared fault schedule for chaos drivers.
func (w *World) FaultPlan() *transport.FaultPlan { return w.plan }

// Shared exposes the node-shared state (directory access for audits).
func (w *World) Shared() *Shared { return w.sh }

// Tree exposes the server key tree (audits read GroupKey/Interval).
func (w *World) Tree() *keytree.Tree { return w.tree }

// Server exposes the server node.
func (w *World) Server() *Server { return w.srv }

// Members returns the live member nodes sorted by ID.
func (w *World) Members() []*Member {
	out := make([]*Member, 0, len(w.members))
	for _, m := range w.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Compare(out[j].id) < 0 })
	return out
}

// Member returns a node by ID.
func (w *World) Member(id ident.ID) (*Member, bool) {
	m, ok := w.members[id.Key()]
	return m, ok
}

// Size returns the current member count (pending churn excluded).
func (w *World) Size() int { return len(w.members) }

func (w *World) freeID() (ident.ID, error) {
	cap := w.cfg.Params.Capacity()
	for tries := 0; tries < 64*cap; tries++ {
		id, err := ident.FromInt(w.cfg.Params, w.idRNG.Intn(cap))
		if err != nil {
			return ident.ID{}, err
		}
		key := id.Key()
		if _, taken := w.members[key]; taken {
			continue
		}
		pendingTaken := false
		for _, rec := range w.pendingJoins {
			if rec.ID.Key() == key {
				pendingTaken = true
				break
			}
		}
		if !pendingTaken {
			return id, nil
		}
	}
	return ident.ID{}, fmt.Errorf("rekeyd: ID space exhausted")
}

// Join schedules a new member for the next Rekey and returns its ID.
func (w *World) Join() (ident.ID, error) {
	if len(w.freeHosts) == 0 {
		return ident.ID{}, fmt.Errorf("rekeyd: host budget exhausted")
	}
	id, err := w.freeID()
	if err != nil {
		return ident.ID{}, err
	}
	w.joinSeq++
	rec := overlay.Record{Host: w.freeHosts[0], ID: id, JoinTime: time.Duration(w.joinSeq)}
	w.freeHosts = w.freeHosts[1:]
	w.pendingJoins = append(w.pendingJoins, rec)
	return id, nil
}

// Leave schedules a graceful departure for the next Rekey.
func (w *World) Leave(id ident.ID) error {
	if _, ok := w.members[id.Key()]; !ok {
		return fmt.Errorf("rekeyd: %v is not a member", id)
	}
	w.pendingLeaves = append(w.pendingLeaves, id)
	return nil
}

// Crash kills a member immediately (frames to and from it drop) and
// schedules its eviction at the next Rekey — the failover path.
func (w *World) Crash(id ident.ID) error {
	if _, ok := w.members[id.Key()]; !ok {
		return fmt.Errorf("rekeyd: %v is not a member", id)
	}
	w.plan.Kill(PeerOf(id))
	w.pendingEvicts = append(w.pendingEvicts, id)
	return nil
}

// Kill cuts a member's traffic without evicting it — a transient
// outage the recovery ladder must ride out once Restore is called.
// Unlike the other driver methods it may be called from a second
// goroutine — killing and restoring peers mid-interval, while Rekey's
// ladder is in flight, is exactly the acceptance scenario.
func (w *World) Kill(id ident.ID) {
	w.plan.Kill(PeerOf(id))
	w.killMu.Lock()
	w.killed[id.Key()] = true
	w.killMu.Unlock()
}

// Restore lifts a Kill. Safe to call concurrently with Rekey, like Kill.
func (w *World) Restore(id ident.ID) {
	w.plan.Restore(PeerOf(id))
	w.killMu.Lock()
	delete(w.killed, id.Key())
	w.killMu.Unlock()
}

// IsKilled reports whether a member is currently dark (killed or
// crashed-and-unreaped). It consults the mutex-guarded fault plan —
// the same oracle the directory's liveness checks use — so auditors
// may call it while a ladder is in flight.
func (w *World) IsKilled(id ident.ID) bool { return w.plan.Killed(PeerOf(id)) }

// addMember spins up the node for a directory record: endpoint, path
// keys from the (already regenerated) tree, full-mesh peer exchange.
func (w *World) addMember(rec overlay.Record, appliedInterval uint64) error {
	path, err := w.tree.PathKeys(rec.ID)
	if err != nil {
		return err
	}
	kr, err := keytree.NewKeyring(w.cfg.Params, rec.ID, path)
	if err != nil {
		return err
	}
	tr, err := w.newEndpoint(PeerOf(rec.ID))
	if err != nil {
		return err
	}
	key := rec.ID.Key()
	// Peer exchange: the newcomer learns everyone, everyone learns the
	// newcomer. (IDs route; these locators are just where they live.)
	if err := tr.AddPeer(transport.ServerID, w.addrs[string(transport.ServerID)]); err != nil {
		tr.Close()
		return err
	}
	w.srv.tr.AddPeer(PeerOf(rec.ID), tr.Addr())
	for k, m := range w.members {
		tr.AddPeer(transport.PeerID(k), w.addrs[k])
		m.tr.AddPeer(PeerOf(rec.ID), tr.Addr())
	}
	w.addrs[key] = tr.Addr()
	w.members[key] = NewMember(rec.ID, w.cfg.Params, tr, w.sh, kr, appliedInterval, w.cfg.Obs)
	return nil
}

// dropMember tears a node down and unregisters it everywhere.
func (w *World) dropMember(id ident.ID) {
	key := id.Key()
	m, ok := w.members[key]
	if !ok {
		return
	}
	delete(w.members, key)
	delete(w.addrs, key)
	w.killMu.Lock()
	delete(w.killed, key)
	w.killMu.Unlock()
	// Lift any standing Kill: the peer ID dies with the member, and a
	// future joiner that happens to draw the same ID must not inherit
	// the blackout.
	w.plan.Restore(PeerOf(id))
	m.Close()
	w.srv.tr.RemovePeer(PeerOf(id))
	for _, o := range w.members {
		o.tr.RemovePeer(PeerOf(id))
	}
}

// Rekey integrates the pending churn (joins, leaves, crash evictions),
// regenerates the key tree, brings up joiner nodes with their path
// keys (the reliable join unicast), and distributes the interval's
// message to every member over the transport, ladder included.
func (w *World) Rekey() (*Result, error) {
	joins := make([]ident.ID, 0, len(w.pendingJoins))
	leaves := make([]ident.ID, 0, len(w.pendingLeaves)+len(w.pendingEvicts))

	w.sh.Write(func(dir *overlay.Directory) {
		for _, rec := range w.pendingJoins {
			if err := dir.Join(rec); err == nil {
				joins = append(joins, rec.ID)
			}
		}
		for _, id := range w.pendingLeaves {
			if err := dir.Leave(id); err == nil {
				leaves = append(leaves, id)
			}
		}
		for _, id := range w.pendingEvicts {
			if err := dir.Evict(id); err != nil {
				continue
			}
			leaves = append(leaves, id)
			// Evict leaves the dead user in surviving owners' neighbor
			// tables on purpose (each owner's failure detector is the
			// one that notices); the world plays that detection step
			// here so the directory is k-consistent again before the
			// interval's forwarding reads it.
			for _, owner := range dir.IDs() {
				if row, col, ok := dir.RemoveNeighbor(owner, id); ok {
					dir.RepairEntryLive(owner, row, col, w.sh.alive)
				}
			}
		}
	})
	for _, id := range w.pendingLeaves {
		w.dropMember(id)
	}
	for _, id := range w.pendingEvicts {
		w.dropMember(id)
	}
	joinRecs := w.pendingJoins
	w.pendingJoins, w.pendingLeaves, w.pendingEvicts = nil, nil, nil

	sort.Slice(joins, func(i, j int) bool { return joins[i].Compare(joins[j]) < 0 })
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Compare(leaves[j]) < 0 })
	plan, err := w.tree.Mark(joins, leaves)
	if err != nil {
		return nil, err
	}
	msg, err := w.tree.Regenerate(plan, w.cfg.RekeyParallelism)
	if err != nil {
		return nil, err
	}

	// Joiners get interval-i keys out of band; the interval-i message
	// wraps new keys under old ones they never held, so they start at
	// appliedInterval = msg.Interval and simply re-ack their copies.
	for _, rec := range joinRecs {
		if err := w.addMember(rec, msg.Interval); err != nil {
			return nil, err
		}
	}

	expected := make([]ident.ID, 0, len(w.members))
	for _, m := range w.Members() {
		expected = append(expected, m.id)
	}
	return w.srv.Distribute(msg, expected)
}

// Close tears down every node. Safe to call twice.
func (w *World) Close() error {
	for _, m := range w.members {
		m.Close()
	}
	w.members = make(map[string]*Member)
	if w.srv != nil {
		w.srv.Close()
	}
	return nil
}
