package ipmc

import (
	"testing"
	"time"

	"tmesh/internal/vnet"
)

func testNet(t *testing.T, hosts int) vnet.Network {
	t.Helper()
	cfg := vnet.GTITMConfig{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		TotalRouters:     120,
		TotalLinks:       300,
		AccessDelayMin:   time.Millisecond,
		AccessDelayMax:   2 * time.Millisecond,
	}
	g, err := vnet.NewGTITM(cfg, hosts, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMulticastTreeProperties(t *testing.T) {
	net := testNet(t, 30)
	receivers := make([]vnet.HostID, 0, 29)
	for h := 1; h < 30; h++ {
		receivers = append(receivers, vnet.HostID(h))
	}
	res, err := Multicast(net, 0, receivers, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != 29 {
		t.Fatalf("delays for %d receivers, want 29", len(res.Delays))
	}
	for _, r := range receivers {
		if res.Delays[r] != net.OneWay(0, r) {
			t.Errorf("receiver %d delay %v, want shortest-path %v", r, res.Delays[r], net.OneWay(0, r))
		}
	}
	// Every tree link carries exactly one copy of the full message.
	for l, c := range res.LinkCopies {
		if c != 1 {
			t.Errorf("link %d carries %d copies, want 1", l, c)
		}
		if res.LinkUnits[l] != 500 {
			t.Errorf("link %d carries %d units, want 500", l, res.LinkUnits[l])
		}
	}
	if res.UnitsPerReceiver != 500 {
		t.Errorf("UnitsPerReceiver = %d, want 500", res.UnitsPerReceiver)
	}
	// The tree has at least as many links as the longest single path.
	longest := 0
	for _, r := range receivers {
		if n := len(net.PathLinks(0, r)); n > longest {
			longest = n
		}
	}
	if len(res.LinkCopies) < longest {
		t.Errorf("tree has %d links, shorter than the longest branch %d", len(res.LinkCopies), longest)
	}
	if res.Duration <= 0 {
		t.Error("duration should be positive")
	}
}

func TestSourceExcludedFromReceivers(t *testing.T) {
	net := testNet(t, 5)
	res, err := Multicast(net, 0, []vnet.HostID{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Delays[0]; ok {
		t.Error("source should not be delivered to itself")
	}
	if len(res.Delays) != 1 {
		t.Errorf("delays = %d, want 1", len(res.Delays))
	}
}

func TestValidation(t *testing.T) {
	net := testNet(t, 5)
	if _, err := Multicast(nil, 0, nil, 1); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := Multicast(net, 0, nil, 0); err == nil {
		t.Error("zero units should fail")
	}
	pl, err := vnet.NewPlanetLab(vnet.PlanetLabConfig{Hosts: 5, JitterFraction: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Multicast(pl, 0, []vnet.HostID{1}, 1); err == nil {
		t.Error("linkless network should fail")
	}
}
