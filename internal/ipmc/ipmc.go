// Package ipmc implements the IP multicast baseline (protocol P_ip of
// Table 2): a DVMRP-style source-rooted shortest-path delivery tree over
// the router topology [9, 26].
//
// Routers replicate the message, so each physical link of the delivery
// tree carries exactly one copy, end hosts forward nothing, and every
// receiver gets the full rekey message (IP multicast offers no
// application-layer point to split at). The paper uses it as the
// lower bound on link stress and the no-splitting bound on per-user
// bandwidth.
package ipmc

import (
	"fmt"
	"time"

	"tmesh/internal/vnet"
)

// Result holds the metrics of one IP-multicast session.
type Result struct {
	// Delays is the one-way delivery delay per receiver.
	Delays map[vnet.HostID]time.Duration
	// LinkCopies is 1 for every link of the delivery tree.
	LinkCopies map[vnet.LinkID]int
	// LinkUnits is the payload units carried per tree link.
	LinkUnits map[vnet.LinkID]int
	// UnitsPerReceiver is what every receiver gets: the whole message.
	UnitsPerReceiver int
	// Duration is the largest delivery delay.
	Duration time.Duration
}

// Multicast delivers units payload units from the source host to every
// receiver along the network's shortest-path tree. The network must
// model links (a router topology).
func Multicast(net vnet.Network, source vnet.HostID, receivers []vnet.HostID, units int) (*Result, error) {
	if net == nil {
		return nil, fmt.Errorf("ipmc: network is required")
	}
	if net.NumLinks() == 0 {
		return nil, fmt.Errorf("ipmc: network does not model links; IP multicast needs a router topology")
	}
	if units < 1 {
		return nil, fmt.Errorf("ipmc: units must be >= 1, got %d", units)
	}
	res := &Result{
		Delays:           make(map[vnet.HostID]time.Duration, len(receivers)),
		LinkCopies:       make(map[vnet.LinkID]int),
		LinkUnits:        make(map[vnet.LinkID]int),
		UnitsPerReceiver: units,
	}
	for _, r := range receivers {
		if r == source {
			continue
		}
		d := net.OneWay(source, r)
		res.Delays[r] = d
		if d > res.Duration {
			res.Duration = d
		}
		// The union of per-receiver shortest paths from one source is
		// the source-rooted tree: each link appears once regardless of
		// how many receivers sit behind it.
		for _, l := range net.PathLinks(source, r) {
			if res.LinkCopies[l] == 0 {
				res.LinkCopies[l] = 1
				res.LinkUnits[l] = units
			}
		}
	}
	return res, nil
}
