package assign

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

// stubNet is a controllable delay matrix: RTT between hosts a and b is
// |pos[a]-pos[b]| milliseconds at the gateway level plus 1 ms of access
// per side.
type stubNet struct {
	pos []float64
}

var _ vnet.Network = (*stubNet)(nil)

func (s *stubNet) NumHosts() int { return len(s.pos) }

func (s *stubNet) GatewayRTT(a, b vnet.HostID) time.Duration {
	if a == b {
		return 0
	}
	d := s.pos[a] - s.pos[b]
	if d < 0 {
		d = -d
	}
	return time.Duration(d * float64(time.Millisecond))
}

func (s *stubNet) AccessRTT(vnet.HostID) time.Duration { return time.Millisecond }

func (s *stubNet) RTT(a, b vnet.HostID) time.Duration {
	if a == b {
		return 0
	}
	return s.GatewayRTT(a, b) + 2*time.Millisecond
}

func (s *stubNet) OneWay(a, b vnet.HostID) time.Duration    { return s.RTT(a, b) / 2 }
func (s *stubNet) NumLinks() int                            { return 0 }
func (s *stubNet) PathLinks(a, b vnet.HostID) []vnet.LinkID { return nil }

var ap = ident.Params{Digits: 3, Base: 8}

func testConfig() Config {
	return Config{
		Params:        ap,
		Thresholds:    []time.Duration{150 * time.Millisecond, 10 * time.Millisecond},
		Percentile:    90,
		CollectTarget: 3,
	}
}

// newWorld wires a stub network, directory, and assigner.
func newWorld(t *testing.T, pos []float64) (*Assigner, *overlay.Directory) {
	t.Helper()
	net := &stubNet{pos: pos}
	dir, err := overlay.NewDirectory(ap, 2, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(testConfig(), dir, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return a, dir
}

// joinHost assigns an ID for the host and admits it to the directory.
func joinHost(t *testing.T, a *Assigner, dir *overlay.Directory, host int) (ident.ID, Stats) {
	t.Helper()
	id, st, err := a.AssignID(vnet.HostID(host))
	if err != nil {
		t.Fatalf("AssignID(host %d): %v", host, err)
	}
	if err := dir.Join(overlay.Record{Host: vnet.HostID(host), ID: id}); err != nil {
		t.Fatalf("Join(host %d, %v): %v", host, id, err)
	}
	return id, st
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Thresholds = bad.Thresholds[:1]
	if err := bad.Validate(); err == nil {
		t.Error("wrong threshold count should fail")
	}
	bad = good
	bad.Thresholds = []time.Duration{time.Second, -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative threshold should fail")
	}
	bad = good
	bad.Percentile = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero percentile should fail")
	}
	bad = good
	bad.Percentile = 101
	if err := bad.Validate(); err == nil {
		t.Error("percentile > 100 should fail")
	}
	bad = good
	bad.CollectTarget = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero collect target should fail")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if _, err := New(good, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil directory should fail")
	}
}

func TestFirstJoinGetsAllZeros(t *testing.T) {
	a, dir := newWorld(t, []float64{0, 1})
	id, st := joinHost(t, a, dir, 1)
	want := ident.MustNew(ap, []ident.Digit{0, 0, 0})
	if !id.Equal(want) {
		t.Errorf("first join ID = %v, want %v", id, want)
	}
	if st.ServerAssigned != ap.Digits {
		t.Errorf("ServerAssigned = %d, want %d", st.ServerAssigned, ap.Digits)
	}
}

// TestProximityClustering: two tight clusters 100 ms apart (under R_1 =
// 150 ms, over R_2 = 10 ms). All users must share digit 0; cluster
// membership must be readable off digit 1.
func TestProximityClustering(t *testing.T) {
	// Host 0: key server. Hosts 1-5 at ~0 ms; hosts 6-10 at ~100 ms.
	pos := []float64{0, 0, 0.5, 1, 1.5, 2, 100, 100.5, 101, 101.5, 102}
	a, dir := newWorld(t, pos)
	idOf := make(map[int]ident.ID)
	for h := 1; h <= 10; h++ {
		idOf[h], _ = joinHost(t, a, dir, h)
	}
	for h := 2; h <= 10; h++ {
		if idOf[h].Digit(0) != idOf[1].Digit(0) {
			t.Errorf("host %d digit0 = %d, want %d (everyone within R_1)", h, idOf[h].Digit(0), idOf[1].Digit(0))
		}
	}
	// Same cluster -> same digit 1; cross cluster -> different digit 1.
	for h := 2; h <= 5; h++ {
		if idOf[h].Digit(1) != idOf[1].Digit(1) {
			t.Errorf("host %d in cluster A has digit1 %d, want %d", h, idOf[h].Digit(1), idOf[1].Digit(1))
		}
	}
	for h := 7; h <= 10; h++ {
		if idOf[h].Digit(1) != idOf[6].Digit(1) {
			t.Errorf("host %d in cluster B has digit1 %d, want %d", h, idOf[h].Digit(1), idOf[6].Digit(1))
		}
	}
	if idOf[1].Digit(1) == idOf[6].Digit(1) {
		t.Error("clusters A and B (100 ms apart > R_2) must have different digit 1")
	}
	// All IDs unique.
	seen := make(map[string]bool)
	for _, id := range idOf {
		if seen[id.Key()] {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id.Key()] = true
	}
}

// TestRemoteUserFailsThreshold: a host 400 ms from everyone fails the
// R_1 test and is placed by the server in an exclusive level-1 subtree.
func TestRemoteUserFailsThreshold(t *testing.T) {
	pos := []float64{0, 0, 1, 2, 400}
	a, dir := newWorld(t, pos)
	var groupDigit ident.Digit
	for h := 1; h <= 3; h++ {
		id, _ := joinHost(t, a, dir, h)
		groupDigit = id.Digit(0)
	}
	id, st := joinHost(t, a, dir, 4)
	if id.Digit(0) == groupDigit {
		t.Errorf("remote host shares level-0 digit %d with the near group", id.Digit(0))
	}
	if st.ServerAssigned != ap.Digits {
		t.Errorf("ServerAssigned = %d, want all %d digits", st.ServerAssigned, ap.Digits)
	}
	// The remote user's level-1 subtree holds only itself.
	if got := dir.Tree().SubtreeSize(id.Prefix(1)); got != 1 {
		t.Errorf("remote user's level-1 subtree has %d users, want 1", got)
	}
}

// TestUniquenessUnderChurn: many joins on one site exhaust bottom
// subtrees and exercise the footnote-3 fallback; IDs stay unique.
func TestUniquenessUnderChurn(t *testing.T) {
	n := 120 // capacity is 512; plenty of collisions in proximity space
	pos := make([]float64, n+1)
	for i := range pos {
		pos[i] = float64(i%7) * 0.1 // everyone within a millisecond
	}
	a, dir := newWorld(t, pos)
	seen := make(map[string]bool)
	for h := 1; h <= n; h++ {
		id, _ := joinHost(t, a, dir, h)
		if seen[id.Key()] {
			t.Fatalf("duplicate ID %v for host %d", id, h)
		}
		seen[id.Key()] = true
	}
	if err := dir.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupFull: with a tiny ID space every slot gets used, then the
// next join fails with ErrGroupFull.
func TestGroupFull(t *testing.T) {
	tiny := ident.Params{Digits: 2, Base: 2}
	pos := make([]float64, 7)
	net := &stubNet{pos: pos}
	dir, err := overlay.NewDirectory(tiny, 2, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:        tiny,
		Thresholds:    []time.Duration{150 * time.Millisecond},
		Percentile:    90,
		CollectTarget: 2,
	}
	a, err := New(cfg, dir, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= 4; h++ {
		id, _, err := a.AssignID(vnet.HostID(h))
		if err != nil {
			t.Fatalf("join %d: %v", h, err)
		}
		if err := dir.Join(overlay.Record{Host: vnet.HostID(h), ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := a.AssignID(5); !errors.Is(err, ErrGroupFull) {
		t.Errorf("5th join err = %v, want ErrGroupFull", err)
	}
}

// TestJoinCostSublinear: the message cost of a join grows much slower
// than the group size (O(P·D·N^(1/D)) per the paper's analysis).
func TestJoinCostSublinear(t *testing.T) {
	n := 150
	pos := make([]float64, n+1)
	for i := range pos {
		pos[i] = float64(i) * 0.01
	}
	a, dir := newWorld(t, pos)
	var last Stats
	for h := 1; h <= n; h++ {
		_, last = joinHost(t, a, dir, h)
	}
	if last.Messages == 0 || last.Queries == 0 {
		t.Fatalf("join cost not recorded: %+v", last)
	}
	if last.Messages > n {
		t.Errorf("join into N=%d cost %d messages; want far fewer than N", n, last.Messages)
	}
}

// TestPlanetLabContinentSeparation: with real-ish RTT structure, users on
// the same site share more leading digits on average than users on
// different continents.
func TestPlanetLabContinentSeparation(t *testing.T) {
	pl, err := vnet.NewPlanetLab(vnet.PlanetLabConfig{Hosts: 80, JitterFraction: 0.05}, 5)
	if err != nil {
		t.Fatal(err)
	}
	params := ident.Params{Digits: 4, Base: 64}
	dir, err := overlay.NewDirectory(params, 4, pl, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:        params,
		Thresholds:    []time.Duration{150 * time.Millisecond, 30 * time.Millisecond, 9 * time.Millisecond},
		Percentile:    90,
		CollectTarget: 5,
	}
	a, err := New(cfg, dir, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	idOf := make(map[int]ident.ID)
	for h := 1; h < 80; h++ {
		id, _, err := a.AssignID(vnet.HostID(h))
		if err != nil {
			t.Fatal(err)
		}
		if err := dir.Join(overlay.Record{Host: vnet.HostID(h), ID: id}); err != nil {
			t.Fatal(err)
		}
		idOf[h] = id
	}
	var sameSite, crossCont, nSame, nCross float64
	for i := 1; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			cpl := float64(idOf[i].CommonPrefixLen(idOf[j]))
			switch {
			case pl.Site(vnet.HostID(i)) == pl.Site(vnet.HostID(j)):
				sameSite += cpl
				nSame++
			case pl.Continent(vnet.HostID(i)) != pl.Continent(vnet.HostID(j)):
				crossCont += cpl
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate sample")
	}
	if sameSite/nSame <= crossCont/nCross {
		t.Errorf("same-site avg common prefix %.2f <= cross-continent %.2f: assignment is not topology-aware",
			sameSite/nSame, crossCont/nCross)
	}
}

func TestPercentile(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	tests := []struct {
		samples []time.Duration
		f       float64
		want    time.Duration
	}{
		{ms(5), 90, 5 * time.Millisecond},
		{ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 90, 9 * time.Millisecond},
		{ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 100, 10 * time.Millisecond},
		{ms(10, 1), 50, 1 * time.Millisecond},
		{ms(3, 1, 2), 1, 1 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := percentile(tt.samples, tt.f); got != tt.want {
			t.Errorf("percentile(%v, %v) = %v, want %v", tt.samples, tt.f, got, tt.want)
		}
	}
}
