// Package assign implements the distributed user ID assignment protocol
// of Section 3.1: a joining user determines its ID digit by digit,
// exploiting proximity in the underlying network so that users belonging
// to the same level-i ID subtree tend to be within RTT threshold R_i of
// each other.
//
// For each digit position i (0 <= i <= D-2) the joining user u:
//
//  1. collects up to P user records from each of its (i,j)-ID subtrees by
//     querying users it already knows (a query names a target ID prefix;
//     the receiver answers with all neighbor-table records matching it);
//  2. measures the gateway-to-gateway RTT r(u,w) to every collected user
//     (derived from end-to-end pings minus the two access-link RTTs);
//  3. computes, per subtree j, the F-percentile of those RTTs; if the
//     smallest percentile f(i,b) is <= R_{i+1}, u sets u.ID[i] = b and
//     recurses into that subtree; otherwise it asks the key server to
//     assign all remaining digits;
//  4. the key server always assigns the last digit, choosing it so that
//     the resulting ID is unique — with the footnote-3 fallback cascade
//     of modifying earlier digits when a level is exhausted.
//
// The total number of messages a join exchanges is O(P·D·N^(1/D)) on
// average; Stats reports the actual counts so the experiment driver can
// verify the shape.
package assign

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"tmesh/internal/ident"
	"tmesh/internal/overlay"
	"tmesh/internal/vnet"
)

// Config holds the protocol parameters. The paper's simulations use
// D = 5, B = 256, R = (150, 30, 9, 3) ms, F = 90, P = 10.
type Config struct {
	Params ident.Params
	// Thresholds are R_1 .. R_{D-1}: Thresholds[i] is compared against
	// the percentile RTT when determining digit i. Must have length
	// Params.Digits-1.
	Thresholds []time.Duration
	// Percentile is F in (0, 100]: the RTT percentile compared against
	// the thresholds ("In order to tolerate the estimation error of
	// RTTs, we did not use 100-percentile; 90-percentile is used").
	Percentile float64
	// CollectTarget is P: the number of user records the joiner tries
	// to collect from each candidate ID subtree.
	CollectTarget int
}

// DefaultThresholds returns the paper's R = (150, 30, 9, 3) ms vector for
// D = 5.
func DefaultThresholds() []time.Duration {
	return []time.Duration{
		150 * time.Millisecond,
		30 * time.Millisecond,
		9 * time.Millisecond,
		3 * time.Millisecond,
	}
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Params:        ident.DefaultParams,
		Thresholds:    DefaultThresholds(),
		Percentile:    90,
		CollectTarget: 10,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if len(c.Thresholds) != c.Params.Digits-1 {
		return fmt.Errorf("assign: need %d thresholds R_1..R_%d, got %d",
			c.Params.Digits-1, c.Params.Digits-1, len(c.Thresholds))
	}
	for i, r := range c.Thresholds {
		if r <= 0 {
			return fmt.Errorf("assign: threshold R_%d must be positive, got %v", i+1, r)
		}
	}
	if c.Percentile <= 0 || c.Percentile > 100 {
		return fmt.Errorf("assign: percentile %v out of (0, 100]", c.Percentile)
	}
	if c.CollectTarget < 1 {
		return fmt.Errorf("assign: CollectTarget must be >= 1, got %d", c.CollectTarget)
	}
	return nil
}

// Stats records the communication cost of one ID assignment.
type Stats struct {
	// Queries is the number of record-collection queries sent (each
	// costs a request and a response message).
	Queries int
	// Probes is the number of RTT measurements performed.
	Probes int
	// ServerAssigned is the number of trailing digits the key server
	// chose (always >= 1; more when a threshold test failed).
	ServerAssigned int
	// Messages is the total protocol messages exchanged, counting
	// query+response and probe+response as two each, plus the final
	// notification round trip with the key server.
	Messages int
	// Trace lists every exchange in protocol order, so callers can
	// reconstruct the join's wall-clock latency (queries are
	// sequential, probes of one level run in parallel).
	Trace []Exchange
}

// ExchangeKind classifies a protocol exchange.
type ExchangeKind int

const (
	// ExchangeServer is a round trip with the key server.
	ExchangeServer ExchangeKind = iota + 1
	// ExchangeQuery is a record-collection query round trip.
	ExchangeQuery
	// ExchangeProbe is an RTT measurement.
	ExchangeProbe
)

// Exchange is one protocol round trip.
type Exchange struct {
	Kind ExchangeKind
	// Peer is the other endpoint (the server's host for
	// ExchangeServer).
	Peer vnet.HostID
	// Level is the digit position being decided (-1 for the initial
	// and final server exchanges).
	Level int
}

// ErrGroupFull is returned when no unique ID can be found.
var ErrGroupFull = errors.New("assign: ID space exhausted")

// Assigner runs the assignment protocol against the current group state.
type Assigner struct {
	cfg Config
	dir *overlay.Directory
	rng *rand.Rand
}

// New creates an Assigner. The directory provides both the membership
// (the key server's knowledge) and the neighbor tables that answer
// collection queries; rng drives the random choices the protocol leaves
// open (seed-record choice, server digit choice).
func New(cfg Config, dir *overlay.Directory, rng *rand.Rand) (*Assigner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dir == nil {
		return nil, errors.New("assign: directory is required")
	}
	if rng == nil {
		return nil, errors.New("assign: rng is required")
	}
	return &Assigner{cfg: cfg, dir: dir, rng: rng}, nil
}

// AssignID runs the full protocol for a joining host and returns its new
// unique ID. The caller is responsible for then joining the directory
// and key tree with the result.
func (a *Assigner) AssignID(host vnet.HostID) (ident.ID, Stats, error) {
	var st Stats
	params := a.cfg.Params

	ids := a.dir.IDs()
	if len(ids) == 0 {
		// "If u is the first join, the key server assigns its user ID
		// as D digits of 0."
		st.ServerAssigned = params.Digits
		st.Messages += 2 // join request + ID grant
		st.Trace = append(st.Trace, Exchange{Kind: ExchangeServer, Peer: a.dir.Server().Host(), Level: -1})
		id, err := ident.New(params, make([]ident.Digit, params.Digits))
		return id, st, err
	}

	// The key server hands u the record of a random existing user.
	seed := ids[a.rng.Intn(len(ids))]
	seedRec, _ := a.dir.Record(seed)
	st.Messages += 2
	st.Trace = append(st.Trace, Exchange{Kind: ExchangeServer, Peer: a.dir.Server().Host(), Level: -1})

	determined := make([]ident.Digit, 0, params.Digits)
	known := []overlay.Record{seedRec}

	for i := 0; i <= params.Digits-2; i++ {
		buckets, err := a.collect(host, determined, known, &st)
		if err != nil {
			return ident.ID{}, st, err
		}
		best, bestF, ok := a.bestBucket(host, i, buckets, &st)
		if !ok || bestF > a.cfg.Thresholds[i] {
			// Step 3, second case: not close enough to any subtree;
			// the server assigns digits i..D-1.
			return a.serverAssign(determined, &st)
		}
		determined = append(determined, best)
		known = buckets[best]
	}
	// All D-1 leading digits determined by proximity; the server assigns
	// the final digit for uniqueness.
	return a.serverAssign(determined, &st)
}

// collect implements step 1: gather up to P records from each (i,j)-ID
// subtree, where i = len(determined). It returns the per-digit buckets.
func (a *Assigner) collect(host vnet.HostID, determined []ident.Digit, known []overlay.Record, st *Stats) (map[ident.Digit][]overlay.Record, error) {
	params := a.cfg.Params
	i := len(determined)
	prefix, err := ident.PrefixOf(params, determined)
	if err != nil {
		return nil, err
	}

	buckets := make(map[ident.Digit][]overlay.Record)
	collected := make(map[string]bool)
	queried := make(map[string]bool)

	add := func(r overlay.Record) {
		if collected[r.ID.Key()] || !r.ID.HasPrefix(prefix) {
			return
		}
		// A bucket keeps at most P records; overflow is dropped, which
		// also bounds how many members of one subtree can be queried.
		d := r.ID.Digit(i)
		if len(buckets[d]) >= a.cfg.CollectTarget {
			return
		}
		collected[r.ID.Key()] = true
		buckets[d] = append(buckets[d], r)
	}
	for _, r := range known {
		add(r)
	}

	// "u keeps querying the users it collected from the ID subtree until
	// it collects P users from the subtree or it has queried all the
	// users it collected from the subtree." Each query also returns
	// records for sibling subtrees (the receiver answers with every
	// neighbor matching the target prefix), so buckets fill each other.
	for {
		var target overlay.Record
		found := false
		// Scan buckets in digit order, not map order: the query sequence
		// decides which records reach the capped buckets first, so a
		// randomized scan would make the assigned IDs — and every result
		// derived from them — differ from run to run.
		digits := make([]ident.Digit, 0, len(buckets))
		for d := range buckets {
			digits = append(digits, d)
		}
		sort.Ints(digits)
		for _, d := range digits {
			b := buckets[d]
			if len(b) >= a.cfg.CollectTarget {
				// This subtree reached P; query its members only if
				// some other bucket still needs records — covered by
				// their own members below.
				continue
			}
			for _, r := range b {
				if !queried[r.ID.Key()] {
					target, found = r, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			break
		}
		queried[target.ID.Key()] = true
		st.Queries++
		st.Messages += 2
		st.Trace = append(st.Trace, Exchange{Kind: ExchangeQuery, Peer: target.Host, Level: i})
		for _, r := range a.answerQuery(target, prefix) {
			add(r)
		}
	}
	return buckets, nil
}

// answerQuery models a collection query: the receiver "looks up its
// neighbor table and returns the user records of all the neighbors whose
// IDs have the target ID prefix" (plus its own record, which the prefix
// always matches for users reached through the protocol).
func (a *Assigner) answerQuery(target overlay.Record, prefix ident.Prefix) []overlay.Record {
	table, ok := a.dir.TableOf(target.ID)
	if !ok {
		return nil // the queried user left meanwhile
	}
	var out []overlay.Record
	if target.ID.HasPrefix(prefix) {
		out = append(out, target)
	}
	table.ForEachNeighbor(func(_ int, _ ident.Digit, n overlay.Neighbor) {
		if n.ID.HasPrefix(prefix) {
			out = append(out, n.Record)
		}
	})
	return out
}

// bestBucket implements steps 2 and 3: probe RTTs and pick the subtree
// with the smallest F-percentile gateway RTT.
func (a *Assigner) bestBucket(host vnet.HostID, level int, buckets map[ident.Digit][]overlay.Record, st *Stats) (ident.Digit, time.Duration, bool) {
	net := a.dir.Network()
	bestDigit := ident.Digit(-1)
	var bestF time.Duration
	digits := make([]ident.Digit, 0, len(buckets))
	for d := range buckets {
		digits = append(digits, d)
	}
	sort.Ints(digits) // deterministic tie-break: smaller digit wins
	for _, d := range digits {
		records := buckets[d]
		rtts := make([]time.Duration, len(records))
		for k, r := range records {
			rtts[k] = net.GatewayRTT(host, r.Host)
			st.Probes++
			st.Messages += 2
			st.Trace = append(st.Trace, Exchange{Kind: ExchangeProbe, Peer: r.Host, Level: level})
		}
		f := percentile(rtts, a.cfg.Percentile)
		if bestDigit < 0 || f < bestF {
			bestDigit, bestF = d, f
		}
	}
	if bestDigit < 0 {
		return 0, 0, false
	}
	return bestDigit, bestF, true
}

// serverAssign implements step 4 plus footnote 3.
func (a *Assigner) serverAssign(determined []ident.Digit, st *Stats) (ident.ID, Stats, error) {
	st.Messages += 2 // notify server, receive full ID + path keys
	st.Trace = append(st.Trace, Exchange{Kind: ExchangeServer, Peer: a.dir.Server().Host(), Level: -1})
	id, assigned, err := CompleteID(a.dir.Tree(), a.cfg.Params, a.rng, determined)
	if err != nil {
		return ident.ID{}, *st, err
	}
	st.ServerAssigned = assigned
	return id, *st, nil
}

// CompleteID is the key server's side of step 4 plus footnote 3: given
// the digits a joining user determined by proximity, it chooses the
// digit at position len(determined) so that the resulting prefix is
// exclusive (no existing user shares it), falling back to modifying
// earlier digits, and finally to any unused ID. It returns the complete
// unique ID and the number of trailing digits the server chose. It is
// shared by the distributed protocol and the GNP-based centralized
// assigner.
func CompleteID(tree *ident.Tree, params ident.Params, rng *rand.Rand, determined []ident.Digit) (ident.ID, int, error) {
	// Try to find an exclusive digit at position l, then l-1, ... 0.
	for l := len(determined); l >= 0; l-- {
		prefix, err := ident.PrefixOf(params, determined[:l])
		if err != nil {
			return ident.ID{}, 0, err
		}
		if d, ok := freeDigit(tree, params, rng, prefix); ok {
			digits := make([]ident.Digit, params.Digits)
			copy(digits, determined[:l])
			digits[l] = d // remaining positions stay 0: the subtree is exclusive
			id, err := ident.New(params, digits)
			if err != nil {
				return ident.ID{}, 0, err
			}
			return id, params.Digits - l, nil
		}
	}
	// "If all the attempts fail, the key server will force u to join a
	// level-1 ID subtree": scan for any unused ID.
	id, ok := anyFreeID(tree, params)
	if !ok {
		return ident.ID{}, 0, ErrGroupFull
	}
	return id, params.Digits, nil
}

// freeDigit returns a digit d such that the child subtree prefix+d holds
// no users, preferring a uniformly random free digit so sibling subtrees
// fill evenly.
func freeDigit(tree *ident.Tree, params ident.Params, rng *rand.Rand, prefix ident.Prefix) (ident.Digit, bool) {
	free := make([]ident.Digit, 0, params.Base)
	for d := 0; d < params.Base; d++ {
		if tree.SubtreeSize(prefix.Child(ident.Digit(d))) == 0 {
			free = append(free, ident.Digit(d))
		}
	}
	if len(free) == 0 {
		return 0, false
	}
	return free[rng.Intn(len(free))], true
}

// anyFreeID scans the ID space for an unused ID (last-resort fallback).
func anyFreeID(tree *ident.Tree, params ident.Params) (ident.ID, bool) {
	capacity := params.Capacity()
	if tree.Size() >= capacity {
		return ident.ID{}, false
	}
	// Walk the tree: descend into the first non-full child at each level.
	digits := make([]ident.Digit, 0, params.Digits)
	prefix := ident.EmptyPrefix
	for l := 0; l < params.Digits; l++ {
		childCap := capacityBelow(params, l+1)
		found := false
		for d := 0; d < params.Base; d++ {
			c := prefix.Child(ident.Digit(d))
			if tree.SubtreeSize(c) < childCap {
				prefix = c
				digits = append(digits, ident.Digit(d))
				found = true
				break
			}
		}
		if !found {
			return ident.ID{}, false
		}
	}
	id, err := ident.New(params, digits)
	if err != nil {
		return ident.ID{}, false
	}
	return id, true
}

// capacityBelow returns the number of IDs under a node at the given
// level.
func capacityBelow(params ident.Params, level int) int {
	return int(math.Pow(float64(params.Base), float64(params.Digits-level)))
}

// percentile returns the F-percentile of the samples using the
// nearest-rank method. It panics on an empty slice (callers guarantee
// non-empty buckets).
func percentile(samples []time.Duration, f float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(f / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
