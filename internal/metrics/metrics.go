// Package metrics provides the statistical machinery behind the
// evaluation figures: inverse cumulative distributions (the paper plots
// "x fraction of users have a value less than or equal to y"),
// percentiles, and multi-run aggregation with rank-wise averaging — the
// method Fig. 6 describes: "we ranked the users in increasing order of
// their stresses; for each rank we computed the average across all runs,
// as well as the 5- and 95-percentile values".
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Distribution is a set of per-user (or per-link) samples from one run.
type Distribution struct {
	samples []float64
}

// NewDistribution copies the given samples into a Distribution.
func NewDistribution(samples []float64) *Distribution {
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	return &Distribution{samples: cp}
}

// Len returns the number of samples.
func (d *Distribution) Len() int { return len(d.samples) }

// Sorted returns a copy of the samples in increasing order. Callers own
// the result; mutating it cannot corrupt the distribution.
func (d *Distribution) Sorted() []float64 {
	return append([]float64(nil), d.samples...)
}

// Mean returns the arithmetic mean (0 for an empty distribution).
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range d.samples {
		sum += s
	}
	return sum / float64(len(d.samples))
}

// Max returns the largest sample (0 for an empty distribution).
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Percentile returns the p-th percentile (nearest-rank). The domain is
// (0, 100]: p outside it, or NaN, returns NaN rather than silently
// clamping to the minimum or maximum sample — the old behavior, which
// turned a caller's unit mistake (Percentile(0.95) for the 95th) into a
// plausible-looking extreme value. An empty distribution returns 0.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 || p > 100 {
		return math.NaN()
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(d.samples) {
		rank = len(d.samples)
	}
	return d.samples[rank-1]
}

// AtFraction returns the value y such that the given fraction of samples
// are <= y: one point of the inverse cumulative distribution.
func (d *Distribution) AtFraction(f float64) float64 {
	return d.Percentile(f * 100)
}

// FractionAtMost returns the fraction of samples <= y.
func (d *Distribution) FractionAtMost(y float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(y, math.Inf(1)))
	return float64(idx) / float64(len(d.samples))
}

// InverseCDFPoint is one point of an aggregated inverse CDF curve.
type InverseCDFPoint struct {
	// Fraction of the population at or below this rank.
	Fraction float64
	// Mean is the rank-wise average across runs.
	Mean float64
	// P5 and P95 bound the rank-wise spread across runs.
	P5, P95 float64
}

// RankAggregate combines same-population distributions from several runs
// rank by rank, producing the curves of Figs. 6–11: runs are each sorted,
// then rank r across runs is averaged and its 5/95-percentiles taken. It
// returns points for numPoints evenly spaced fractions in (0, 1]. All
// runs must have the same sample count.
//
// numPoints is normalized to the sample count n when it is out of range:
// values < 1 (callers may pass 0 to mean "every rank") and values > n
// (more points than distinct ranks exist) both yield exactly n points,
// one per rank. This is deliberate — it keeps curve resolution capped at
// the data's own resolution instead of duplicating ranks — and tests pin
// it.
func RankAggregate(runs []*Distribution, numPoints int) ([]InverseCDFPoint, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("metrics: no runs to aggregate")
	}
	n := runs[0].Len()
	for i, r := range runs {
		if r.Len() != n {
			return nil, fmt.Errorf("metrics: run %d has %d samples, want %d", i, r.Len(), n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("metrics: empty runs")
	}
	if numPoints < 1 || numPoints > n {
		numPoints = n
	}
	points := make([]InverseCDFPoint, 0, numPoints)
	across := make([]float64, len(runs))
	for pi := 1; pi <= numPoints; pi++ {
		rank := pi*n/numPoints - 1
		if rank < 0 {
			rank = 0
		}
		for ri, r := range runs {
			across[ri] = r.samples[rank]
		}
		d := NewDistribution(across)
		points = append(points, InverseCDFPoint{
			Fraction: float64(rank+1) / float64(n),
			Mean:     d.Mean(),
			P5:       d.Percentile(5),
			P95:      d.Percentile(95),
		})
	}
	return points, nil
}

// Summary condenses a distribution into the headline numbers the paper
// quotes in its prose (medians, tail percentiles, fractions under
// thresholds).
type Summary struct {
	N             int
	Mean, Median  float64
	P90, P95, Max float64
}

// Summarize computes a Summary.
func Summarize(d *Distribution) Summary {
	return Summary{
		N:      d.Len(),
		Mean:   d.Mean(),
		Median: d.Percentile(50),
		P90:    d.Percentile(90),
		P95:    d.Percentile(95),
		Max:    d.Max(),
	}
}
