package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// relErr compares an estimate to the exact value, scaling by the
// population spread so uniform-near-zero cases don't blow up.
func relErr(got, want, spread float64) float64 {
	return math.Abs(got-want) / spread
}

// TestStreamingQuantileAccuracy pins the P² estimator against exact
// percentiles for several sample shapes: the estimator must stay within
// 2% of the population spread of the true value at 100k samples.
func TestStreamingQuantileAccuracy(t *testing.T) {
	const n = 100_000
	shapes := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() * 1000 },
		"normal":    func(r *rand.Rand) float64 { return 500 + 120*r.NormFloat64() },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(1 + 0.5*r.NormFloat64()) },
		"latency-ish (exp)": func(r *rand.Rand) float64 {
			return r.ExpFloat64() * 20 // heavy tail, like hop latencies
		},
	}
	for name, draw := range shapes {
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			r := rand.New(rand.NewSource(7))
			sq := NewStreamingQuantile(q)
			samples := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := draw(r)
				sq.Observe(x)
				samples = append(samples, x)
			}
			d := NewDistribution(samples)
			exact := d.Percentile(q * 100)
			spread := d.Max() - d.Percentile(1)
			if spread <= 0 {
				spread = 1
			}
			if e := relErr(sq.Value(), exact, spread); e > 0.02 {
				t.Errorf("%s q=%v: P² %.4f vs exact %.4f (err %.4f of spread)",
					name, q, sq.Value(), exact, e)
			}
			if sq.Count() != n {
				t.Errorf("%s q=%v: count %d, want %d", name, q, sq.Count(), n)
			}
		}
	}
}

// TestStreamingQuantileSmallStreams checks the exact-mode path (< 5
// samples) and the empty case.
func TestStreamingQuantileSmallStreams(t *testing.T) {
	sq := NewStreamingQuantile(0.5)
	if sq.Value() != 0 {
		t.Fatalf("empty estimator Value = %v, want 0", sq.Value())
	}
	for _, x := range []float64{30, 10, 20} {
		sq.Observe(x)
	}
	if got := sq.Value(); got != 20 {
		t.Fatalf("median of {10,20,30} = %v, want exact 20", got)
	}
}

// TestStreamingSummaryMatchesSummarize compares the streaming summary's
// headline numbers to Summarize over the same samples.
func TestStreamingSummaryMatchesSummarize(t *testing.T) {
	const n = 50_000
	r := rand.New(rand.NewSource(11))
	ss := NewStreamingSummary()
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := 50 + 10*r.NormFloat64()
		ss.Observe(x)
		samples = append(samples, x)
	}
	d := NewDistribution(samples)
	exact := Summarize(d)
	got := ss.Summary()

	if got.N != exact.N {
		t.Fatalf("N = %d, want %d", got.N, exact.N)
	}
	if math.Abs(got.Mean-exact.Mean) > 1e-6 {
		t.Fatalf("Mean = %v, want %v", got.Mean, exact.Mean)
	}
	if got.Max != exact.Max {
		t.Fatalf("Max = %v, want %v", got.Max, exact.Max)
	}
	spread := d.Max() - d.Percentile(1)
	for _, c := range []struct {
		name       string
		got, exact float64
	}{
		{"Median", got.Median, exact.Median},
		{"P90", got.P90, exact.P90},
		{"P95", got.P95, exact.P95},
	} {
		if e := relErr(c.got, c.exact, spread); e > 0.02 {
			t.Errorf("%s = %v, want ~%v (err %.4f of spread)", c.name, c.got, c.exact, e)
		}
	}
}
