package metrics

import (
	"math"
	"sort"
)

// StreamingQuantile estimates one quantile of a stream in constant
// memory using the P² algorithm (Jain & Chlamtac, 1985): five markers
// track the running minimum, maximum, the target quantile, and the two
// intermediate quantiles, and each observation adjusts marker heights by
// piecewise-parabolic interpolation. Distribution retains every sample —
// fine for a 4096-member experiment run, fatal for a million-member soak
// that observes per-member values every interval — so soak paths report
// percentiles through this estimator instead.
//
// The estimate is exact while fewer than five samples have been seen and
// approximate afterwards; accuracy against exact percentiles is pinned
// by tests. Not safe for concurrent use.
type StreamingQuantile struct {
	p     float64    // target quantile in (0, 1)
	count int64      // observations so far
	q     [5]float64 // marker heights
	n     [5]float64 // marker positions (1-based)
	want  [5]float64 // desired marker positions
	dn    [5]float64 // desired-position increments per observation
}

// NewStreamingQuantile creates an estimator for quantile q in (0, 1)
// (e.g. 0.95 for the 95th percentile). Out-of-range targets are clamped
// into (0, 1).
func NewStreamingQuantile(q float64) *StreamingQuantile {
	if math.IsNaN(q) || q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q >= 1 {
		q = 1 - 1e-12
	}
	s := &StreamingQuantile{p: q}
	s.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return s
}

// Quantile returns the target quantile in (0, 1).
func (s *StreamingQuantile) Quantile() float64 { return s.p }

// Count returns the number of observations so far.
func (s *StreamingQuantile) Count() int64 { return s.count }

// Observe feeds one sample.
func (s *StreamingQuantile) Observe(x float64) {
	if s.count < 5 {
		s.q[s.count] = x
		s.count++
		if s.count == 5 {
			sort.Float64s(s.q[:])
			for i := range s.n {
				s.n[i] = float64(i + 1)
			}
			p := s.p
			s.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	s.count++

	// Find the cell the sample falls in, updating the extreme markers.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x < s.q[1]:
		k = 0
	case x < s.q[2]:
		k = 1
	case x < s.q[3]:
		k = 2
	case x <= s.q[4]:
		k = 3
	default:
		s.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		s.n[i]++
	}
	for i := range s.want {
		s.want[i] += s.dn[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.n[i]
		if (d >= 1 && s.n[i+1]-s.n[i] > 1) || (d <= -1 && s.n[i-1]-s.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := s.parabolic(i, sign)
			if s.q[i-1] < h && h < s.q[i+1] {
				s.q[i] = h
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.n[i] += sign
		}
	}
}

func (s *StreamingQuantile) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.n[i+1]-s.n[i-1])*
		((s.n[i]-s.n[i-1]+d)*(s.q[i+1]-s.q[i])/(s.n[i+1]-s.n[i])+
			(s.n[i+1]-s.n[i]-d)*(s.q[i]-s.q[i-1])/(s.n[i]-s.n[i-1]))
}

func (s *StreamingQuantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.n[j]-s.n[i])
}

// Value returns the current quantile estimate (0 before any sample;
// exact nearest-rank while fewer than five samples have been seen).
func (s *StreamingQuantile) Value() float64 {
	if s.count == 0 {
		return 0
	}
	if s.count < 5 {
		sorted := make([]float64, s.count)
		copy(sorted, s.q[:s.count])
		sort.Float64s(sorted)
		rank := int(math.Ceil(s.p * float64(s.count)))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	return s.q[2]
}

// StreamingSummary is the constant-memory counterpart of Summarize: it
// tracks count, mean, max, and P² estimates of the median and the 90th
// and 95th percentiles, so a soak can report the same headline numbers
// as Summary without retaining its population. Not safe for concurrent
// use.
type StreamingSummary struct {
	n             int64
	sum, max      float64
	p50, p90, p95 *StreamingQuantile
}

// NewStreamingSummary creates an empty summary accumulator.
func NewStreamingSummary() *StreamingSummary {
	return &StreamingSummary{
		p50: NewStreamingQuantile(0.50),
		p90: NewStreamingQuantile(0.90),
		p95: NewStreamingQuantile(0.95),
	}
}

// Observe feeds one sample.
func (s *StreamingSummary) Observe(x float64) {
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.p50.Observe(x)
	s.p90.Observe(x)
	s.p95.Observe(x)
}

// Count returns the number of observations so far.
func (s *StreamingSummary) Count() int64 { return s.n }

// Summary returns the current estimates in the same shape Summarize
// produces from a full Distribution.
func (s *StreamingSummary) Summary() Summary {
	out := Summary{N: int(s.n), Max: s.max}
	if s.n > 0 {
		out.Mean = s.sum / float64(s.n)
	}
	out.Median = s.p50.Value()
	out.P90 = s.p90.Value()
	out.P95 = s.p95.Value()
	return out
}
