package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution([]float64{3, 1, 2, 5, 4})
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", d.Mean())
	}
	if d.Max() != 5 {
		t.Errorf("Max = %v, want 5", d.Max())
	}
	if got := d.Percentile(50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := d.Percentile(1); got != 1 {
		t.Errorf("P1 = %v, want 1", got)
	}
	if got := d.AtFraction(0.4); got != 2 {
		t.Errorf("AtFraction(0.4) = %v, want 2", got)
	}
	sorted := d.Sorted()
	if !sortedAscending(sorted) {
		t.Error("Sorted not ascending")
	}
}

// TestSortedIsACopy pins the ownership contract: mutating the slice
// Sorted returns must not corrupt the distribution.
func TestSortedIsACopy(t *testing.T) {
	d := NewDistribution([]float64{3, 1, 2, 5, 4})
	leak := d.Sorted()
	for i := range leak {
		leak[i] = -1000
	}
	if got := d.Mean(); got != 3 {
		t.Errorf("Mean after caller mutation = %v, want 3", got)
	}
	if got := d.Max(); got != 5 {
		t.Errorf("Max after caller mutation = %v, want 5", got)
	}
	if fresh := d.Sorted(); !sortedAscending(fresh) || fresh[0] != 1 {
		t.Errorf("Sorted after caller mutation = %v", fresh)
	}
}

func sortedAscending(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

// TestPercentileDomain pins the documented (0, 100] domain: out-of-range
// and NaN arguments return NaN instead of clamping to an extreme sample,
// which hid fraction-vs-percent unit mistakes.
func TestPercentileDomain(t *testing.T) {
	d := NewDistribution([]float64{1, 2, 3, 4, 5})
	for _, p := range []float64{0, -1, 100.001, 200, math.NaN()} {
		if got := d.Percentile(p); !math.IsNaN(got) {
			t.Errorf("Percentile(%v) = %v, want NaN", p, got)
		}
	}
	if got := d.Percentile(100); got != 5 {
		t.Errorf("Percentile(100) = %v, want 5", got)
	}
	if got := d.Percentile(0.001); got != 1 {
		t.Errorf("Percentile(0.001) = %v, want 1 (smallest sample)", got)
	}
	// The empty-distribution zero takes precedence over domain checks.
	if got := NewDistribution(nil).Percentile(0); got != 0 {
		t.Errorf("empty Percentile(0) = %v, want 0", got)
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := NewDistribution(nil)
	if d.Mean() != 0 || d.Max() != 0 || d.Percentile(50) != 0 || d.FractionAtMost(1) != 0 {
		t.Error("empty distribution should yield zeros")
	}
}

func TestFractionAtMost(t *testing.T) {
	d := NewDistribution([]float64{1, 2, 2, 3})
	tests := []struct {
		y    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := d.FractionAtMost(tt.y); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FractionAtMost(%v) = %v, want %v", tt.y, got, tt.want)
		}
	}
}

func TestRankAggregate(t *testing.T) {
	// Three runs of the same shifted distribution: rank-wise mean is the
	// middle run.
	runs := []*Distribution{
		NewDistribution([]float64{1, 2, 3, 4}),
		NewDistribution([]float64{2, 3, 4, 5}),
		NewDistribution([]float64{3, 4, 5, 6}),
	}
	points, err := RankAggregate(runs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	wantMeans := []float64{2, 3, 4, 5}
	for i, p := range points {
		if math.Abs(p.Mean-wantMeans[i]) > 1e-12 {
			t.Errorf("point %d mean = %v, want %v", i, p.Mean, wantMeans[i])
		}
		if p.P5 > p.Mean || p.P95 < p.Mean {
			t.Errorf("point %d percentile band [%v, %v] excludes mean %v", i, p.P5, p.P95, p.Mean)
		}
		if p.Fraction <= 0 || p.Fraction > 1 {
			t.Errorf("point %d fraction %v out of (0,1]", i, p.Fraction)
		}
	}
	if points[3].Fraction != 1 {
		t.Errorf("last fraction = %v, want 1", points[3].Fraction)
	}
}

func TestRankAggregateValidation(t *testing.T) {
	if _, err := RankAggregate(nil, 4); err == nil {
		t.Error("no runs should fail")
	}
	runs := []*Distribution{NewDistribution([]float64{1}), NewDistribution([]float64{1, 2})}
	if _, err := RankAggregate(runs, 2); err == nil {
		t.Error("mismatched run sizes should fail")
	}
	if _, err := RankAggregate([]*Distribution{NewDistribution(nil)}, 2); err == nil {
		t.Error("empty runs should fail")
	}
}

// TestRankAggregateNumPointsNormalization pins the documented rule:
// numPoints < 1 or > n yields exactly one point per rank.
func TestRankAggregateNumPointsNormalization(t *testing.T) {
	runs := []*Distribution{NewDistribution([]float64{1, 2, 3, 4})}
	for _, numPoints := range []int{0, -3, 5, 1000} {
		points, err := RankAggregate(runs, numPoints)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 4 {
			t.Errorf("numPoints=%d: got %d points, want 4 (one per rank)", numPoints, len(points))
			continue
		}
		for i, p := range points {
			if want := float64(i+1) / 4; p.Fraction != want {
				t.Errorf("numPoints=%d point %d: fraction %v, want %v", numPoints, i, p.Fraction, want)
			}
			if p.Mean != float64(i+1) {
				t.Errorf("numPoints=%d point %d: mean %v, want %v", numPoints, i, p.Mean, float64(i+1))
			}
		}
	}
}

func TestRankAggregateDownsampling(t *testing.T) {
	samples := make([]float64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range samples {
		samples[i] = rng.Float64()
	}
	points, err := RankAggregate([]*Distribution{NewDistribution(samples)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("points = %d, want 10", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Mean < points[i-1].Mean {
			t.Error("inverse CDF must be non-decreasing")
		}
	}
}

func TestSummarize(t *testing.T) {
	d := NewDistribution([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	s := Summarize(d)
	if s.N != 10 || s.Median != 5 || s.P90 != 9 || s.Max != 10 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Mean-5.5) > 1e-12 {
		t.Errorf("Mean = %v, want 5.5", s.Mean)
	}
}
