// Package eventsim implements the discrete event-driven simulation engine
// that drives every experiment, mirroring the authors' methodology: "we
// wrote our own discrete event-driven simulator; we simulate the sending
// and the reception of a message as events".
//
// The engine maintains a virtual clock and a priority queue of events.
// Handlers run sequentially in timestamp order, so simulated protocol code
// needs no synchronisation. Ties are broken by scheduling order, making
// runs fully deterministic under a fixed workload seed.
package eventsim

import (
	"container/heap"
	"time"
)

// Handler is the code executed when an event fires. It runs with the
// simulator clock set to the event's timestamp and may schedule further
// events.
type Handler func(now time.Duration)

type event struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   Handler
	dead bool // cancelled
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil {
		t.ev.dead = true
	}
}

// Simulator is a single-threaded discrete event engine. The zero value is
// not usable; construct with New.
type Simulator struct {
	queue       eventQueue
	now         time.Duration
	seq         uint64
	processed   uint64
	pastClamped uint64
	running     bool
	stopped     bool
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of events still queued (including cancelled
// events not yet discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// PastClamps returns the number of events whose requested time preceded
// the clock and were clamped to now by At.
func (s *Simulator) PastClamps() uint64 { return s.pastClamped }

// At schedules fn to run at the given absolute virtual time. A time
// that precedes the current clock is clamped to now — fault injectors
// routinely schedule relative to stale timestamps (e.g. a crash time
// observed before a detection advanced the clock), and a hard panic
// would make every injector defend itself; the clamp keeps the queue
// ordered and PastClamps exposes how often it happened.
func (s *Simulator) At(at time.Duration, fn Handler) Timer {
	if at < s.now {
		at = s.now
		s.pastClamped++
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Timer{ev: ev}
}

// After schedules fn to run after the given delay from the current time.
// Negative delays are treated as zero.
func (s *Simulator) After(d time.Duration, fn Handler) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Run executes events until the queue drains or Stop is called. It
// returns the number of events processed by this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline (all events if
// deadline is negative) until the queue drains or Stop is called. The
// clock is left at the last executed event, or advanced to the deadline if
// the deadline is reached with events still pending.
func (s *Simulator) RunUntil(deadline time.Duration) uint64 {
	if s.running {
		panic("eventsim: RunUntil called re-entrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if deadline >= 0 && next.at > deadline {
			s.now = deadline
			return n
		}
		heap.Pop(&s.queue)
		if next.dead {
			continue
		}
		s.now = next.at
		s.processed++
		n++
		next.fn(s.now)
	}
	return n
}

// Stop halts Run/RunUntil after the current handler returns. Pending
// events remain queued.
func (s *Simulator) Stop() { s.stopped = true }
