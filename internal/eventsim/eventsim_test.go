package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestRunInTimestampOrder(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	var fired []time.Duration
	for i := 0; i < 1000; i++ {
		at := time.Duration(rng.Intn(10_000)) * time.Millisecond
		s.At(at, func(now time.Duration) {
			if now != at {
				t.Errorf("handler clock %v, want %v", now, at)
			}
			fired = append(fired, now)
		})
	}
	if got := s.Run(); got != 1000 {
		t.Fatalf("Run processed %d, want 1000", got)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Error("events fired out of timestamp order")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after drain", s.Pending())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		s.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order broken at %d: got %v", i, order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var hits []time.Duration
	s.After(10*time.Millisecond, func(now time.Duration) {
		hits = append(hits, now)
		s.After(5*time.Millisecond, func(now time.Duration) {
			hits = append(hits, now)
		})
	})
	s.Run()
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(hits) != 2 || hits[0] != want[0] || hits[1] != want[1] {
		t.Errorf("hits = %v, want %v", hits, want)
	}
	if s.Now() != 15*time.Millisecond {
		t.Errorf("Now = %v, want 15ms", s.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.After(-time.Second, func(now time.Duration) {
		fired = true
		if now != 0 {
			t.Errorf("now = %v, want 0", now)
		}
	})
	s.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := New()
	var firedAt []time.Duration
	s.At(time.Second, func(now time.Duration) {
		// A fault injector working from a stale timestamp: the request
		// is in the past, so it must run at the current clock instead.
		s.At(500*time.Millisecond, func(at time.Duration) {
			firedAt = append(firedAt, at)
		})
	})
	s.Run()
	if len(firedAt) != 1 || firedAt[0] != time.Second {
		t.Fatalf("past-time event fired at %v, want [1s]", firedAt)
	}
	if s.PastClamps() != 1 {
		t.Errorf("PastClamps = %d, want 1", s.PastClamps())
	}
	if s.Now() != time.Second {
		t.Errorf("clamped event moved the clock to %v", s.Now())
	}
}

func TestPastClampsCounterStaysZeroForFutureEvents(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func(time.Duration) {})
	}
	s.Run()
	if s.PastClamps() != 0 {
		t.Errorf("PastClamps = %d, want 0", s.PastClamps())
	}
}

func TestRunUntilDeadline(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, at := range []time.Duration{1, 2, 3, 4, 5} {
		at := at * time.Second
		s.At(at, func(now time.Duration) { fired = append(fired, now) })
	}
	n := s.RunUntil(3 * time.Second)
	if n != 3 {
		t.Errorf("RunUntil processed %d, want 3", n)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	// Resume to completion.
	n = s.Run()
	if n != 2 || len(fired) != 5 {
		t.Errorf("resume processed %d (total fired %d), want 2 (5)", n, len(fired))
	}
}

func TestRunUntilAdvancesClockToDeadlineWhenIdle(t *testing.T) {
	s := New()
	s.At(10*time.Second, func(time.Duration) {})
	s.RunUntil(4 * time.Second)
	if s.Now() != 4*time.Second {
		t.Errorf("Now = %v, want 4s", s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	fired := 0
	timer := s.After(time.Second, func(time.Duration) { fired++ })
	s.After(2*time.Second, func(time.Duration) { fired++ })
	timer.Cancel()
	timer.Cancel() // double-cancel is a no-op
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (cancelled timer must not run)", fired)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func(time.Duration) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("processed %d events before Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", s.Pending())
	}
	// A subsequent Run resumes.
	s.Run()
	if count != 10 {
		t.Errorf("after resume count = %d, want 10", count)
	}
}

func TestProcessedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func(time.Duration) {})
	}
	s.Run()
	if s.Processed() != 5 {
		t.Errorf("Processed = %d, want 5", s.Processed())
	}
}
