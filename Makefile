GO ?= go
FUZZTIME ?= 5s

.PHONY: ci build vet test race bench bench-rekey bench-hot soak-short soak-transport soak-metrics trace-audit fuzz

# ci is the full verification gate: static checks, the race detector
# over the whole tree (the parallel experiment harness in internal/exp
# and the SPT cache in internal/vnet have concurrency tests that only
# bite under -race; the chaos soak acceptance tests run here too), the
# socket-transport soak (fault ladder over real loopback and UDP
# endpoints), a short fuzz pass over the wire decoders, the
# flight-recorder theorem audit over a freshly traced soak, and the
# hot-path benchmark gate (the compiled hop filter must stay at
# 0 allocs/op).
ci: vet race soak-transport fuzz trace-audit bench-hot

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# soak-short is the race-enabled chaos soak: the full acceptance
# scenarios (default config, byte-identical replay, 20% hop loss) with
# every paper-invariant auditor armed.
soak-short:
	$(GO) test -race ./internal/chaos -run Soak

# soak-transport is the race-enabled socket soak: rekeyd nodes over
# real loopback and UDP transports walk the chaos fault ladder (loss,
# delay spikes, partition, kill/restore, crash) with the five
# paper-invariant auditors armed, plus the transport-level redial,
# deadline, and goroutine-leak guards.
soak-transport:
	$(GO) test -race -count=1 ./internal/transport
	$(GO) test -race -count=1 ./internal/chaos -run SocketSoak
	$(GO) test -race -count=1 ./internal/rekeyd

# soak-metrics runs a short instrumented soak with -metrics-out and
# sanity-checks the JSONL stream (valid JSON per line, strictly
# increasing interval numbers) with the jsonlcheck tool.
soak-metrics:
	mkdir -p results
	$(GO) run ./cmd/rekeysim -soak -soak-intervals 6 -soak-members 100 -metrics-out results/soak-metrics.jsonl
	$(GO) run ./internal/obs/jsonlcheck results/soak-metrics.jsonl

# trace-audit runs a short soak with the flight recorder sampling every
# second interval, schema-checks the trace stream, and machine-checks
# the paper's path theorems (exactly-one-copy, forward-iff-needed,
# level monotonicity, ladder coverage) against the recorded hops.
trace-audit:
	mkdir -p results
	$(GO) run ./cmd/rekeysim -soak -soak-intervals 6 -soak-members 100 -trace-out results/soak-trace.jsonl -trace-sample 2
	$(GO) run ./internal/obs/jsonlcheck results/soak-trace.jsonl
	$(GO) run ./cmd/traceaudit results/soak-trace.jsonl

# fuzz gives each wire decoder a short budget on top of the committed
# seed corpus (internal/wire/testdata/fuzz, regenerated with
# `go run ./internal/wire/gencorpus`). `go test -fuzz` takes one
# harness at a time, hence the five invocations.
fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalRekey$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalQueryReply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalQuery$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalAck$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalSync$$' -fuzztime $(FUZZTIME)

# bench runs every figure benchmark once; use a larger -benchtime for
# stable numbers. The Fig06/Fig08 Sequential/Parallel pairs measure the
# run-level fan-out (speedup requires GOMAXPROCS > 1).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-hot regenerates the committed hot-path baseline
# BENCH_hotpath.json: the per-hop split cost before (HopFilterLegacy)
# and after (HopFilterCompiled) compilation, the one-time index build,
# and the end-to-end regen/distribute pipeline at N=4096. benchjson
# fails the target if the compiled hop filter reports any allocations,
# so the allocation-free steady state is a CI invariant, not a comment.
bench-hot:
	$(GO) test -run '^$$' -bench 'HopFilter|SplitIndexBuild' -benchmem -benchtime 1s . > results-bench-hot.txt || (cat results-bench-hot.txt; rm -f results-bench-hot.txt; exit 1)
	$(GO) test -run '^$$' -bench 'ProcessIntervalPar|DistributeRekey' -benchmem -benchtime 3x . >> results-bench-hot.txt || (cat results-bench-hot.txt; rm -f results-bench-hot.txt; exit 1)
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json -require-zero-allocs BenchmarkHopFilterCompiled < results-bench-hot.txt
	rm -f results-bench-hot.txt

# bench-rekey compares the staged rekey pipeline sequential vs parallel
# at N=4096 members with real AES-GCM: key regeneration across level-1
# ID subtrees (ProcessInterval) and split delivery + keyring apply
# (DistributeRekey). Regeneration speedup requires GOMAXPROCS > 1; the
# distribution pair also gains from the parallel path's per-subtree
# prefilter table.
bench-rekey:
	$(GO) test -run '^$$' -bench 'ProcessInterval|DistributeRekey' -benchtime 3x .
