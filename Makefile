GO ?= go

.PHONY: ci build vet test race bench

# ci is the full verification gate: static checks plus the race
# detector over the whole tree. The parallel experiment harness
# (internal/exp) and the SPT cache (internal/vnet) have dedicated
# concurrency tests that only bite under -race.
ci: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every figure benchmark once; use a larger -benchtime for
# stable numbers. The Fig06/Fig08 Sequential/Parallel pairs measure the
# run-level fan-out (speedup requires GOMAXPROCS > 1).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
