GO ?= go
FUZZTIME ?= 5s

# Benchmark baselines are stamped with the document schema version and
# the source revision that produced them, so a committed BENCH_*.json
# diff is attributable without archaeology.
BENCH_SCHEMA ?= tmesh-bench/v1
COMMIT := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: ci build vet test race bench bench-rekey bench-hot bench-mem bench-all soak-short soak-transport soak-metrics soak-scale soak-multigroup soak-slo trace-audit fuzz

# ci is the full verification gate: static checks, the race detector
# over the whole tree (the parallel experiment harness in internal/exp
# and the SPT cache in internal/vnet have concurrency tests that only
# bite under -race; the chaos soak acceptance tests run here too), the
# socket-transport soak (fault ladder over real loopback and UDP
# endpoints), a short fuzz pass over the wire decoders, the
# flight-recorder theorem audit over a freshly traced soak, the
# hot-path benchmark gate (the compiled hop filter must stay at
# 0 allocs/op), the memory-budget gate, the N=100k scale soak, the
# multi-group tenancy soak (16 groups on one shared pool, 100k-join
# flash crowd, cross-width replay), and the SLO soak (per-tenant
# verdict stream schema-checked, exposition format golden-pinned).
ci: vet race soak-transport fuzz trace-audit bench-hot bench-mem soak-scale soak-multigroup soak-slo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# soak-short is the race-enabled chaos soak: the full acceptance
# scenarios (default config, byte-identical replay, 20% hop loss) with
# every paper-invariant auditor armed.
soak-short:
	$(GO) test -race ./internal/chaos -run Soak

# soak-transport is the race-enabled socket soak: rekeyd nodes over
# real loopback and UDP transports walk the chaos fault ladder (loss,
# delay spikes, partition, kill/restore, crash) with the five
# paper-invariant auditors armed, plus the transport-level redial,
# deadline, and goroutine-leak guards.
soak-transport:
	$(GO) test -race -count=1 ./internal/transport
	$(GO) test -race -count=1 ./internal/chaos -run SocketSoak
	$(GO) test -race -count=1 ./internal/rekeyd

# soak-metrics runs a short instrumented soak with -metrics-out and
# sanity-checks the JSONL stream (valid JSON per line, strictly
# increasing interval numbers) with the jsonlcheck tool.
soak-metrics:
	mkdir -p results
	$(GO) run ./cmd/rekeysim -soak -soak-intervals 6 -soak-members 100 -metrics-out results/soak-metrics.jsonl
	$(GO) run ./internal/obs/jsonlcheck results/soak-metrics.jsonl

# trace-audit runs a short soak with the flight recorder sampling every
# second interval, schema-checks the trace stream, and machine-checks
# the paper's path theorems (exactly-one-copy, forward-iff-needed,
# level monotonicity, ladder coverage) against the recorded hops.
trace-audit:
	mkdir -p results
	$(GO) run ./cmd/rekeysim -soak -soak-intervals 6 -soak-members 100 -trace-out results/soak-trace.jsonl -trace-sample 2
	$(GO) run ./internal/obs/jsonlcheck results/soak-trace.jsonl
	$(GO) run ./cmd/traceaudit results/soak-trace.jsonl

# fuzz gives each wire decoder a short budget on top of the committed
# seed corpus (internal/wire/testdata/fuzz, regenerated with
# `go run ./internal/wire/gencorpus`). `go test -fuzz` takes one
# harness at a time, hence the five invocations.
fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalRekey$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalQueryReply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalQuery$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalAck$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzUnmarshalSync$$' -fuzztime $(FUZZTIME)

# bench runs every figure benchmark once; use a larger -benchtime for
# stable numbers. The Fig06/Fig08 Sequential/Parallel pairs measure the
# run-level fan-out (speedup requires GOMAXPROCS > 1).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-hot regenerates the committed hot-path baseline
# BENCH_hotpath.json: the per-hop split cost before (HopFilterLegacy)
# and after (HopFilterCompiled) compilation, the one-time index build,
# and the end-to-end regen/distribute pipeline at N=4096. benchjson
# fails the target if the compiled hop filter reports any allocations,
# so the allocation-free steady state is a CI invariant, not a comment.
bench-hot:
	$(GO) test -run '^$$' -bench 'HopFilter|SplitIndexBuild' -benchmem -benchtime 1s . > results-bench-hot.txt || (cat results-bench-hot.txt; rm -f results-bench-hot.txt; exit 1)
	$(GO) test -run '^$$' -bench 'ProcessIntervalPar|DistributeRekey' -benchmem -benchtime 3x . >> results-bench-hot.txt || (cat results-bench-hot.txt; rm -f results-bench-hot.txt; exit 1)
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json -schema $(BENCH_SCHEMA) -commit $(COMMIT) -require-zero-allocs BenchmarkHopFilterCompiled < results-bench-hot.txt
	rm -f results-bench-hot.txt

# bench-mem regenerates the committed memory baseline BENCH_memory.json
# from the scale-soak benchmarks: the resident bytes/member of a fully
# built RealCrypto group (MemberFootprint, N=20k) and the steady-state
# allocation cost of one churn interval at N=100k (ScaleSoakInterval).
# benchjson fails the target when a build or interval blows its byte or
# allocation budget, so memory regressions on the million-member path
# break CI instead of surfacing in production soaks. Budgets carry
# ~1.5x headroom over the committed numbers.
bench-mem:
	$(GO) test -run '^$$' -bench 'MemberFootprint|ScaleSoakInterval' -benchmem -benchtime 1x ./internal/chaos > results-bench-mem.txt || (cat results-bench-mem.txt; rm -f results-bench-mem.txt; exit 1)
	$(GO) run ./cmd/benchjson -out BENCH_memory.json \
		-schema $(BENCH_SCHEMA) -commit $(COMMIT) \
		-require-max-bytes 'BenchmarkMemberFootprint=120000000,BenchmarkScaleSoakInterval=800000000' \
		-require-max-allocs 'BenchmarkMemberFootprint=700000,BenchmarkScaleSoakInterval=2500000' \
		< results-bench-mem.txt
	rm -f results-bench-mem.txt

# bench-all regenerates every committed benchmark baseline with the
# current schema/commit stamp in one shot.
bench-all: bench-hot bench-mem

# soak-scale is the in-memory million-member ladder: a N=100k scale
# soak (flat keytree + rank-indexed member store + streaming
# percentiles, 1% churn per interval, every keyring spot-checked) runs
# in CI; the full N=1,000,000 soak is the manual acceptance run:
#
#	$(GO) run ./cmd/rekeysim -soak -soak-n 1000000
#
soak-scale:
	$(GO) run ./cmd/rekeysim -soak -soak-n 100000 -soak-intervals 6

# soak-multigroup is the multi-group tenancy soak (internal/grouphost):
# 16 groups — a 100k-join flash crowd, a 10k mass join+leave, and 14
# full-protocol groups (half under Appendix B cluster rekeying) on one
# shared GT-ITM topology — multiplexed over one shared worker pool with
# staggered rekey boundaries. Every interval runs the five paper
# auditors per group, then the whole host replays at pool width 1 and
# the reports must be byte-identical.
soak-multigroup:
	$(GO) run ./cmd/rekeysim -soak -groups 16 -flash-joins 100000 -mass-churn 10000 -soak-intervals 4 -soak-rekey-parallelism 4

# soak-slo is the ops-plane gate: a multi-group tenancy soak with the
# per-tenant SLO engine streaming one "slo" record per group per rekey
# boundary. The soak exits non-zero on any page verdict, jsonlcheck
# schema-checks the stream (per-group boundary ordering, verdict enum,
# objective good<=total), rekeystat renders it, and the Prometheus
# exposition golden test pins the /metrics wire format.
soak-slo:
	mkdir -p results
	$(GO) run ./cmd/rekeysim -soak -groups 8 -flash-joins 20000 -mass-churn 2000 -soak-intervals 3 -soak-rekey-parallelism 4 -metrics-out results/soak-slo.jsonl
	$(GO) run ./internal/obs/jsonlcheck results/soak-slo.jsonl
	$(GO) run ./cmd/rekeystat -jsonl results/soak-slo.jsonl
	$(GO) test ./internal/obs/expose -run Golden -count=1

# bench-rekey compares the staged rekey pipeline sequential vs parallel
# at N=4096 members with real AES-GCM: key regeneration across level-1
# ID subtrees (ProcessInterval) and split delivery + keyring apply
# (DistributeRekey). Regeneration speedup requires GOMAXPROCS > 1; the
# distribution pair also gains from the parallel path's per-subtree
# prefilter table.
bench-rekey:
	$(GO) test -run '^$$' -bench 'ProcessInterval|DistributeRekey' -benchtime 3x .
